// Unit tests for Environment construction and rendering.
#include <gtest/gtest.h>

#include "pkg/environment.h"
#include "pkg/index.h"

namespace lfm::pkg {
namespace {

Environment resolve_env(const std::string& name, const std::string& root) {
  static const PackageIndex& index = standard_index();
  Solver solver(index);
  auto result = solver.resolve({Requirement::parse(root)});
  EXPECT_TRUE(result.ok());
  return Environment(name, result.value());
}

TEST(Environment, AggregatesSizeAndFiles) {
  const Environment env = resolve_env("np", "numpy");
  EXPECT_GT(env.total_size(), 0);
  EXPECT_GT(env.total_files(), 0);
  EXPECT_GE(env.package_count(), 4u);  // numpy + python + blas stack
  int64_t sum = 0;
  for (const auto* p : env.packages()) sum += p->size_bytes;
  EXPECT_EQ(sum, env.total_size());
}

TEST(Environment, PackagesSortedByName) {
  const Environment env = resolve_env("np", "numpy");
  for (size_t i = 1; i < env.packages().size(); ++i) {
    EXPECT_LT(env.packages()[i - 1]->name, env.packages()[i]->name);
  }
}

TEST(Environment, RequirementsTxtPinned) {
  const Environment env = resolve_env("np", "numpy");
  const std::string reqs = env.requirements_txt();
  EXPECT_NE(reqs.find("numpy==1.19.2"), std::string::npos);
  EXPECT_NE(reqs.find("python==3.8.5"), std::string::npos);
  // One line per package.
  size_t lines = 0;
  for (const char c : reqs) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, env.package_count());
}

TEST(Environment, CondaYaml) {
  const Environment env = resolve_env("hep", "coffea");
  const std::string yaml = env.conda_yaml();
  EXPECT_NE(yaml.find("name: hep"), std::string::npos);
  EXPECT_NE(yaml.find("  - coffea=0.6.47"), std::string::npos);
}

TEST(Environment, HasNativeLibs) {
  EXPECT_TRUE(resolve_env("np", "numpy").has_native_libs());
  EXPECT_TRUE(resolve_env("tf", "tensorflow").has_native_libs());
}

TEST(Environment, SynthesizeFilesMatchesCounts) {
  const Environment env = resolve_env("np", "numpy");
  const auto files = env.synthesize_files();
  EXPECT_EQ(static_cast<int>(files.size()), env.total_files());
  // One text (relocatable) entry per package.
  int text_files = 0;
  int64_t bytes = 0;
  for (const auto& f : files) {
    if (f.is_text) ++text_files;
    bytes += f.size;
    EXPECT_FALSE(f.path.empty());
    EXPECT_GT(f.size, 0);
  }
  EXPECT_EQ(text_files, static_cast<int>(env.package_count()));
  // Sizes are per-file-rounded, so total is within one file size per package.
  EXPECT_NEAR(static_cast<double>(bytes), static_cast<double>(env.total_size()),
              static_cast<double>(env.total_files()));
}

TEST(Environment, SynthesizedPathsUnique) {
  const Environment env = resolve_env("np", "numpy");
  const auto files = env.synthesize_files();
  std::set<std::string> paths;
  for (const auto& f : files) paths.insert(f.path);
  EXPECT_EQ(paths.size(), files.size());
}

}  // namespace
}  // namespace lfm::pkg
