// Tests for the federated foreman tier (src/fed/): in-process two-shard
// dispatch with namespaced metrics registries, cache-affinity routing,
// journal done-flag recovery, and an end-to-end forked-process run — one
// root, two foreman processes, four worker processes — with a SIGKILLed
// foreman mid-run, checking exactly-once completion and payloads
// bit-identical to an in-process reference execution.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos/journal.h"
#include "fed/foreman.h"
#include "fed/root_master.h"
#include "net/socket.h"
#include "net/worker_client.h"
#include "obs/collector.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "serde/value.h"
#include "util/error.h"
#include "wq/protocol.h"
#include "wq/worker.h"

namespace lfm::fed {
namespace {

wq::TaskMessage echo_task(uint64_t id) {
  wq::TaskMessage t;
  t.task_id = id;
  t.category = "fed-test";
  t.command_line = "echo";
  t.allocation = alloc::Resources{1.0, 512e6, 1e9};
  return t;
}

// An in-process echo worker thread serving one foreman's shard until bye.
struct EchoWorker {
  explicit EchoWorker(uint16_t port, const std::string& name) {
    net::WorkerClientOptions o;
    o.port = port;
    o.name = name;
    o.echo_results = true;
    o.echo_payload = serde::Bytes{'p', 'o', 'n', 'g'};
    client = std::make_unique<net::WorkerClient>(o);
    thread = std::thread([this] { client->run(); });
  }
  void join() { thread.join(); }
  std::unique_ptr<net::WorkerClient> client;
  std::thread thread;
};

// Run the root's loop until `n` foremen are connected and idle, so group
// submission (and therefore routing) starts from a deterministic topology.
void await_foremen(net::EventLoop& loop, RootMaster& root, int n) {
  uint64_t poll = 0;
  poll = loop.run_every(0.005, [&] {
    if (root.connected_foremen() >= n) loop.stop();
  });
  const uint64_t watchdog = loop.run_after(30.0, [&] { loop.stop(); });
  loop.run();
  loop.cancel_timer(poll);
  loop.cancel_timer(watchdog);
  ASSERT_GE(root.connected_foremen(), n) << "foremen never connected";
}

TEST(Federation, TwoShardsCompleteAllGroupsWithNamespacedMetrics) {
  obs::Metrics root_m("root."), f1_m("f1."), f2_m("f2.");
  net::EventLoop loop;
  RootMasterConfig rc;
  rc.metrics = &root_m;
  rc.groups_per_foreman = 2;
  RootMaster root(loop, rc);

  ForemanConfig fc1;
  fc1.name = "f1";
  fc1.root_port = root.port();
  fc1.metrics = &f1_m;
  fc1.stats_interval = 0.05;
  ForemanConfig fc2 = fc1;
  fc2.name = "f2";
  fc2.metrics = &f2_m;
  Foreman f1(fc1), f2(fc2);
  std::thread ft1([&] { f1.run(); });
  std::thread ft2([&] { f2.run(); });
  EchoWorker w1(f1.worker_port(), "w1"), w2(f1.worker_port(), "w2");
  EchoWorker w3(f2.worker_port(), "w3"), w4(f2.worker_port(), "w4");
  await_foremen(loop, root, 2);

  // Per-group files: zero cache affinity everywhere, so the least-loaded
  // tie-break must spread the groups across both shards (depth 2 per shard,
  // six groups — each shard is guaranteed at least two).
  const int kGroups = 6, kPerGroup = 4;
  uint64_t next_id = 1;
  for (int g = 0; g < kGroups; ++g) {
    TaskGroup group;
    group.name = "g" + std::to_string(g);
    serde::Bytes file(4096);
    for (size_t i = 0; i < file.size(); ++i) {
      file[i] = static_cast<uint8_t>(i * 131 + g);
    }
    const std::string fname = "g" + std::to_string(g) + ".bin";
    for (int i = 0; i < kPerGroup; ++i) {
      wq::TaskMessage t = echo_task(next_id++);
      t.infiles.push_back({fname, static_cast<int64_t>(file.size()), true});
      group.tasks.push_back(std::move(t));
    }
    group.files.emplace(fname, std::move(file));
    root.submit(std::move(group));
  }

  std::map<uint64_t, int> events;
  root.set_on_result([&](const wq::ResultMessage& r) { events[r.task_id]++; });
  const RootStats stats = root.run_until_complete(60.0);
  ft1.join();
  ft2.join();
  w1.join();
  w2.join();
  w3.join();
  w4.join();

  const int kTasks = kGroups * kPerGroup;
  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_EQ(stats.groups_completed, kGroups);
  EXPECT_EQ(stats.duplicate_results, 0);
  ASSERT_EQ(events.size(), static_cast<size_t>(kTasks));
  for (const auto& [id, n] : events) EXPECT_EQ(n, 1) << "task " << id;
  const serde::Bytes pong{'p', 'o', 'n', 'g'};
  for (const wq::ResultMessage& r : root.results()) {
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.payload, pong);
  }
  // Both shards worked and relayed: tasks split across the two foremen.
  EXPECT_EQ(f1.results_relayed() + f2.results_relayed(), kTasks);
  EXPECT_GT(f1.results_relayed(), 0);
  EXPECT_GT(f2.results_relayed(), 0);
  // Each group's cacheable file crossed the root link exactly once, was
  // chunked into its shard's cache, and fanned out locally from there.
  EXPECT_EQ(stats.files_sent, kGroups);
  EXPECT_GT(f1.cache().stats().chunks, 0);
  EXPECT_GT(f2.cache().stats().chunks, 0);

  // Namespaced registries: each component's series lives under its own
  // prefix, none of them collide, and nothing leaked into the others.
  EXPECT_EQ(root_m.counter("fed.results").value(), kTasks);
  EXPECT_EQ(f1_m.counter("net.results").value() +
                f2_m.counter("net.results").value(),
            kTasks);
  EXPECT_EQ(f1_m.counter("foreman.results_relayed").value(),
            f1.results_relayed());
  EXPECT_EQ(root_m.counter("net.results").value(), 0);
  EXPECT_EQ(f1_m.counter("fed.results").value(), 0);
  bool prefixed = true;
  for (const auto& [name, v] : f1_m.counters()) {
    if (name.rfind("f1.", 0) != 0) prefixed = false;
  }
  EXPECT_TRUE(prefixed) << "f1 registry holds an unprefixed series";
}

TEST(Federation, AffinityRoutesWarmGroupToTheShardHoldingItsFiles) {
  obs::Metrics m("affinity.");
  net::EventLoop loop;
  RootMasterConfig rc;
  rc.metrics = &m;
  RootMaster root(loop, rc);

  ForemanConfig fc1;
  fc1.name = "fa";
  fc1.root_port = root.port();
  fc1.metrics = &m;
  ForemanConfig fc2 = fc1;
  fc2.name = "fb";
  Foreman fa(fc1), fb(fc2);
  std::thread ta([&] { fa.run(); });
  std::thread tb([&] { fb.run(); });
  EchoWorker wa(fa.worker_port(), "wa"), wb(fb.worker_port(), "wb");
  await_foremen(loop, root, 2);

  serde::Bytes big(16384, 0x5a);
  auto make_group = [&](const std::string& name, uint64_t first_id) {
    TaskGroup g;
    g.name = name;
    for (int i = 0; i < 2; ++i) {
      wq::TaskMessage t = echo_task(first_id + static_cast<uint64_t>(i));
      t.infiles.push_back({"big.dat", static_cast<int64_t>(big.size()), true});
      g.tasks.push_back(std::move(t));
    }
    g.files.emplace("big.dat", big);
    return g;
  };
  // Four groups, all naming the same cacheable file, submitted with both
  // shards connected and idle. The first group lands wherever the load
  // tie-break puts it and ships the file; affinity must then pull every
  // later group to that same shard — the idle sibling's lighter load never
  // wins against a warm cache — so the file crosses the root link exactly
  // once.
  for (int g = 0; g < 4; ++g) {
    root.submit(make_group("warm" + std::to_string(g),
                           1 + static_cast<uint64_t>(g) * 10));
  }

  const RootStats stats = root.run_until_complete(60.0);
  ta.join();
  tb.join();
  wa.join();
  wb.join();

  EXPECT_EQ(stats.tasks_completed, 8);
  EXPECT_EQ(stats.files_sent, 1) << "warm groups re-shipped their file";
  // One shard did everything; the idle sibling stayed cold.
  EXPECT_TRUE(fa.results_relayed() == 8 || fb.results_relayed() == 8);
}

TEST(Federation, JournalDoneFlagsSurviveRestartExactlyOnce) {
  // Round 1: complete three tasks with a journal attached.
  chaos::Journal journal;
  {
    net::EventLoop loop;
    RootMasterConfig rc;
    rc.journal = &journal;
    RootMaster root(loop, rc);
    TaskGroup g;
    g.name = "round1";
    for (uint64_t id = 1; id <= 3; ++id) g.tasks.push_back(echo_task(id));
    root.submit(std::move(g));
    ForemanConfig fc;
    fc.name = "fj";
    fc.root_port = root.port();
    Foreman foreman(fc);
    std::thread ft([&] { foreman.run(); });
    EchoWorker w(foreman.worker_port(), "wj");
    const RootStats stats = root.run_until_complete(60.0);
    ft.join();
    w.join();
    EXPECT_EQ(stats.tasks_completed, 3);
  }
  EXPECT_EQ(journal.completed_task_ids(),
            (std::unordered_set<uint64_t>{1, 2, 3}));

  // Round 2: a restarted root re-submits the same tasks plus a new one.
  // The recovered done flags keep 1..3 off the wire entirely.
  net::EventLoop loop;
  RootMaster root(loop, {});
  root.recover(journal);
  TaskGroup g;
  g.name = "round2";
  for (uint64_t id = 1; id <= 4; ++id) g.tasks.push_back(echo_task(id));
  root.submit(std::move(g));
  ForemanConfig fc;
  fc.name = "fj2";
  fc.root_port = root.port();
  Foreman foreman(fc);
  std::thread ft([&] { foreman.run(); });
  EchoWorker w(foreman.worker_port(), "wj2");
  const RootStats stats = root.run_until_complete(60.0);
  ft.join();
  w.join();

  EXPECT_EQ(stats.recovered_done, 3);
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_EQ(foreman.tasks_received(), 1) << "a recovered task was re-dispatched";
  ASSERT_EQ(root.results().size(), 4u);
  EXPECT_EQ(root.results()[3].payload, (serde::Bytes{'p', 'o', 'n', 'g'}));
}

// --- end-to-end: root <-> forked foreman processes <-> forked workers --------

pid_t fork_python_worker(uint16_t port, const std::string& name,
                         bool traced = false) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Drop inherited fds: a surviving copy of a parent listener keeps its
  // port accepting after that tier stops serving it (see net/socket.h).
  net::close_inherited_fds();
  int status = 1;
  try {
    if (traced) {
      obs::Recorder::global().set_enabled(true);
      obs::Recorder::global().clear();
    }
    net::WorkerClientOptions o;
    o.port = port;
    o.name = name;
    o.worker.poll_interval = 0.01;
    // Orphan discipline: a worker whose foreman was SIGKILLed reconnects
    // into the dead shard's inherited listener backlog and hears silence;
    // the short idle timeout plus the finite budget (which a bare accept no
    // longer refills) gets it out cleanly.
    o.idle_timeout = 0.5;
    o.max_reconnect_attempts = 4;
    chaos::RetryPolicy fast;
    fast.backoff_base = 0.01;
    fast.backoff_max = 0.05;
    o.reconnect = fast;
    net::WorkerClient client(o);
    client.run();
    status = 0;
  } catch (...) {
  }
  _exit(status);
}

pid_t fork_foreman(uint16_t root_port, const std::string& name, int workers,
                   bool traced = false) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  net::close_inherited_fds();
  int status = 1;
  try {
    if (traced) {
      obs::Recorder::global().set_enabled(true);
      obs::Recorder::global().clear();
    }
    ForemanConfig fc;
    fc.name = name;
    fc.root_port = root_port;
    fc.stats_interval = 0.02;
    fc.service.tasks_per_worker = 4;
    Foreman foreman(fc);
    // The shard's workers are forked from inside the shard process, so no
    // port needs reserving: the ephemeral worker_port() is already bound.
    std::vector<pid_t> kids;
    for (int i = 0; i < workers; ++i) {
      kids.push_back(fork_python_worker(
          foreman.worker_port(), name + "-w" + std::to_string(i), traced));
    }
    foreman.run();
    status = 0;
    for (const pid_t kid : kids) {
      int s = -1;
      if (waitpid(kid, &s, 0) != kid || !WIFEXITED(s) || WEXITSTATUS(s) != 0) {
        status = 1;
      }
    }
  } catch (...) {
  }
  _exit(status);
}

TEST(FedEndToEnd, ForemanKillMidRunCompletesExactlyOnceBitIdentical) {
  const char* module = R"(
def mul(a, b):
    return {'v': a * b, 'd': a - b}
)";
  const int kGroups = 8, kPerGroup = 4;
  const int kTasks = kGroups * kPerGroup;
  std::vector<std::pair<wq::TaskMessage, wq::FileSet>> specs;
  for (int i = 0; i < kTasks; ++i) {
    serde::ValueList args;
    args.push_back(serde::Value(int64_t{i}));
    args.push_back(serde::Value(int64_t{37 + i}));
    specs.push_back(wq::make_python_task(500 + static_cast<uint64_t>(i), "mul",
                                         module, "mul",
                                         serde::Value(std::move(args)),
                                         alloc::Resources{1.0, 512e6, 1e9}));
  }
  // Reference run: the same messages through an in-process LocalWorker.
  std::vector<serde::Bytes> expected;
  {
    wq::LocalWorkerOptions wo;
    wo.poll_interval = 0.01;
    wq::LocalWorker direct(wo);
    for (const auto& [task, files] : specs) {
      const wq::ResultMessage r = direct.execute(task, files);
      ASSERT_EQ(r.exit_code, 0) << "task " << task.task_id;
      expected.push_back(r.payload);
    }
  }

  net::EventLoop loop;
  RootMasterConfig rc;
  rc.groups_per_foreman = 4;
  RootMaster root(loop, rc);
  for (int g = 0; g < kGroups; ++g) {
    TaskGroup group;
    group.name = "eg" + std::to_string(g);
    for (int i = 0; i < kPerGroup; ++i) {
      auto& [task, files] = specs[g * kPerGroup + i];
      group.tasks.push_back(task);
      for (const auto& [n, b] : files) group.files.emplace(n, b);
    }
    root.submit(std::move(group));
  }

  const pid_t victim = fork_foreman(root.port(), "fk0", 2);
  const pid_t survivor = fork_foreman(root.port(), "fk1", 2);

  std::map<uint64_t, int> events;
  bool killed = false;
  root.set_on_result([&](const wq::ResultMessage& r) {
    events[r.task_id]++;
    if (!killed) {
      // Kill only once the victim shard verifiably holds in-flight groups
      // (a group leaves the load set strictly before its last result), so
      // the SIGKILL is guaranteed to orphan work that must requeue to the
      // survivor.
      const std::map<std::string, size_t> loads = root.shard_loads();
      auto it = loads.find("fk0");
      if (it != loads.end() && it->second >= 1) {
        killed = true;
        ::kill(victim, SIGKILL);
      }
    }
  });
  const RootStats stats = root.run_until_complete(120.0);

  EXPECT_TRUE(killed);
  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_EQ(stats.foremen_lost, 2);  // one murdered, one clean bye
  EXPECT_GE(stats.requeued_groups, 1);
  EXPECT_GE(stats.requeued_tasks, 1);
  EXPECT_GE(stats.stats_frames, 1);
  ASSERT_EQ(events.size(), static_cast<size_t>(kTasks));
  for (const auto& [id, n] : events) {
    EXPECT_EQ(n, 1) << "task " << id << " reported " << n << " times";
  }
  const std::vector<wq::ResultMessage>& results = root.results();
  ASSERT_EQ(results.size(), static_cast<size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[i].exit_code, 0);
    EXPECT_EQ(results[i].payload, expected[i])
        << "payload differs for task " << results[i].task_id;
  }

  int status = -1;
  ASSERT_EQ(waitpid(victim, &status, 0), victim);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  status = -1;
  ASSERT_EQ(waitpid(survivor, &status, 0), survivor);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "surviving foreman exited " << status;
}

TEST(FedEndToEnd, TraceSpansOneTaskAcrossThreeProcessLanes) {
  // The whole-tree tracing claim at test scale: a root, two forked foreman
  // processes, four forked workers, every process recording. After the run
  // the root's collector must hold at least one trace id whose
  // submit→ship→run→result spans appear in three distinct process lanes
  // and nest once timestamps are normalized into the root's clock.
  const char* module = R"(
def inc(x):
    return x + 1
)";
  obs::Recorder::global().set_enabled(true);
  obs::Recorder::global().clear();
  obs::Collector collector;

  net::EventLoop loop;
  RootMasterConfig rc;
  rc.groups_per_foreman = 4;
  rc.collector = &collector;
  RootMaster root(loop, rc);
  const int kGroups = 4, kPerGroup = 4;
  const int kTasks = kGroups * kPerGroup;
  for (int g = 0; g < kGroups; ++g) {
    TaskGroup group;
    group.name = "tg" + std::to_string(g);
    for (int i = 0; i < kPerGroup; ++i) {
      serde::ValueList args;
      args.push_back(serde::Value(int64_t{g * kPerGroup + i}));
      auto [task, files] = wq::make_python_task(
          900 + static_cast<uint64_t>(g * kPerGroup + i), "inc", module, "inc",
          serde::Value(std::move(args)), alloc::Resources{1.0, 512e6, 1e9});
      group.tasks.push_back(task);
      for (const auto& [n, b] : files) group.files.emplace(n, b);
    }
    root.submit(std::move(group));
  }

  // Forked children inherit stdio buffers; flush so a piped stdout (ctest)
  // doesn't replay buffered output once per child.
  std::fflush(stdout);
  const pid_t f0 = fork_foreman(root.port(), "tt0", 2, /*traced=*/true);
  const pid_t f1 = fork_foreman(root.port(), "tt1", 2, /*traced=*/true);

  const RootStats stats = root.run_until_complete(120.0);
  int status = -1;
  ASSERT_EQ(waitpid(f0, &status, 0), f0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  status = -1;
  ASSERT_EQ(waitpid(f1, &status, 0), f1);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_GE(stats.telemetry_frames, 1);

  collector.add_local("root", obs::Recorder::global().drain_events());
  obs::Recorder::global().set_enabled(false);
  obs::Recorder::global().clear();
  // Every tier contributed: the root plus at least one foreman process and
  // one worker process (2 foremen x (1 + 2 workers) = up to 7 sources).
  EXPECT_GE(collector.source_count(), 3u);

  struct PerTrace {
    bool has_task = false;
    double task_begin = 0.0, task_end = 0.0;
    std::vector<double> inflight_begin, inflight_end;
    std::vector<double> run_begin, run_end;
    std::map<uint64_t, int> lanes;
  };
  std::map<uint64_t, PerTrace> traces;
  for (const auto& ev : collector.events()) {
    if (ev.trace_id == 0) continue;
    PerTrace& t = traces[ev.trace_id];
    ++t.lanes[ev.pid];
    if (ev.ph == 'X' && ev.name == "task") {
      t.has_task = true;
      t.task_begin = ev.ts;
      t.task_end = ev.ts + ev.dur;
    }
    if (ev.ph == 'X' && ev.name == "task.inflight") {
      t.inflight_begin.push_back(ev.ts);
      t.inflight_end.push_back(ev.ts + ev.dur);
    }
    if (ev.ph == 'B' && ev.name == "lfm.run") t.run_begin.push_back(ev.ts);
    if (ev.ph == 'E') t.run_end.push_back(ev.ts);
  }
  EXPECT_EQ(traces.size(), static_cast<size_t>(kTasks));

  // Two relay hops (worker->foreman->root), each clock estimate bounded by
  // its link's RTT/2.
  const double kSkewTolerance = 2e-3;
  int nested_three_lanes = 0;
  for (const auto& [id, t] : traces) {
    if (!t.has_task || t.lanes.size() < 3) continue;
    if (t.inflight_begin.empty() || t.run_begin.empty() || t.run_end.empty()) {
      continue;
    }
    const double in_first =
        *std::min_element(t.inflight_begin.begin(), t.inflight_begin.end());
    const double in_last =
        *std::max_element(t.inflight_end.begin(), t.inflight_end.end());
    const double run_first =
        *std::min_element(t.run_begin.begin(), t.run_begin.end());
    const double run_last =
        *std::max_element(t.run_end.begin(), t.run_end.end());
    const bool inflight_in_task =
        t.task_begin - kSkewTolerance <= in_first &&
        in_last <= t.task_end + kSkewTolerance;
    const bool run_in_inflight = in_first - kSkewTolerance <= run_first &&
                                 run_first <= run_last &&
                                 run_last <= in_last + kSkewTolerance;
    if (inflight_in_task && run_in_inflight) ++nested_three_lanes;
  }
  EXPECT_GE(nested_three_lanes, 1)
      << "no trace id spanned three process lanes with nested "
         "task / task.inflight / lfm.run spans";
}

}  // namespace
}  // namespace lfm::fed
