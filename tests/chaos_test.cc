// Tests for the chaos & recovery subsystem: retry/backoff policy semantics
// (including the seed-identical defaults), fault-plan determinism, journal
// JSONL round-trips, the Master's fault-sink primitives, crash-restart
// recovery equivalence, and a property-style fuzz sweep of seeded fault
// schedules asserting the soak invariants (exactly-once completion, drained
// accounting, labeler consistency).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "alloc/labeler.h"
#include "chaos/injector.h"
#include "chaos/journal.h"
#include "chaos/plan.h"
#include "chaos/retry.h"
#include "util/error.h"
#include "util/rng.h"
#include "wq/master.h"

namespace lfm::chaos {
namespace {

using alloc::LabelerConfig;
using alloc::Resources;
using alloc::Strategy;

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicy, DefaultsReplicateSeedBehaviour) {
  const RetryPolicy policy;  // all defaults
  // Exhaustions defer to the legacy MasterConfig::max_retries limit and
  // requeue immediately (delay 0 takes the seed's direct-enqueue path).
  auto d = policy.decide(FailureKind::kExhaustion, 7, /*exhaustions=*/3,
                         /*total_failures=*/3, /*legacy_max_exhaustions=*/10);
  EXPECT_TRUE(d.retry);
  EXPECT_EQ(d.delay, 0.0);
  d = policy.decide(FailureKind::kExhaustion, 7, 11, 11, 10);
  EXPECT_FALSE(d.retry);
  EXPECT_STREQ(d.reason, "exhaustion-limit");
  // Crash-lost and spuriously killed attempts retry unconditionally — the
  // seed never charged them against any limit.
  for (const auto kind : {FailureKind::kWorkerCrash, FailureKind::kSpuriousKill}) {
    d = policy.decide(kind, 7, /*exhaustions=*/0, /*total_failures=*/500, 10);
    EXPECT_TRUE(d.retry);
    EXPECT_EQ(d.delay, 0.0);
  }
}

TEST(RetryPolicy, MaxExhaustionsOverridesLegacyLimit) {
  RetryPolicy policy;
  policy.max_exhaustions = 2;
  EXPECT_TRUE(policy.decide(FailureKind::kExhaustion, 1, 2, 2, 10).retry);
  EXPECT_FALSE(policy.decide(FailureKind::kExhaustion, 1, 3, 3, 10).retry);
}

TEST(RetryPolicy, RetryBudgetCountsAllFailureKinds) {
  RetryPolicy policy;
  policy.retry_budget = 2;
  EXPECT_TRUE(policy.decide(FailureKind::kWorkerCrash, 1, 0, 2, 10).retry);
  const auto d = policy.decide(FailureKind::kWorkerCrash, 1, 0, 3, 10);
  EXPECT_FALSE(d.retry);
  EXPECT_STREQ(d.reason, "retry-budget");
}

TEST(RetryPolicy, ExponentialBackoffIsCapped) {
  RetryPolicy policy;
  policy.backoff_base = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max = 5.0;
  EXPECT_DOUBLE_EQ(policy.backoff_delay(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(policy.backoff_delay(1, 3), 5.0);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_delay(1, 9), 5.0);
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.backoff_base = 10.0;
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.25;
  policy.jitter_seed = 42;
  for (uint64_t task = 1; task <= 50; ++task) {
    const double d = policy.backoff_delay(task, 0);
    EXPECT_GE(d, 10.0 * 0.75);
    EXPECT_LE(d, 10.0 * 1.25);
    // Pure function of (seed, task, failure index).
    EXPECT_DOUBLE_EQ(d, policy.backoff_delay(task, 0));
  }
  // Different tasks draw different jitter (the whole point of jitter: no
  // synchronized thundering-herd requeue).
  EXPECT_NE(policy.backoff_delay(1, 0), policy.backoff_delay(2, 0));
}

TEST(RetryPolicy, ExhaustionIsPermanentComparesNamedDimension) {
  const Resources node{16.0, 64e9, 128e9};
  EXPECT_TRUE(RetryPolicy::exhaustion_is_permanent({1.0, 64e9, 1e9}, node, "memory"));
  EXPECT_FALSE(RetryPolicy::exhaustion_is_permanent({1.0, 32e9, 1e9}, node, "memory"));
  EXPECT_TRUE(RetryPolicy::exhaustion_is_permanent({16.0, 1e9, 1e9}, node, "cores"));
  EXPECT_TRUE(RetryPolicy::exhaustion_is_permanent({1.0, 1e9, 128e9}, node, "disk"));
  EXPECT_FALSE(RetryPolicy::exhaustion_is_permanent({1.0, 1e9, 1e9}, node, "disk"));
  EXPECT_FALSE(RetryPolicy::exhaustion_is_permanent({16.0, 64e9, 128e9}, node, ""));
}

// ---------------------------------------------------------------------------
// Plan compilation
// ---------------------------------------------------------------------------

bool same_events(const std::vector<FaultEvent>& a, const std::vector<FaultEvent>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].kind != b[i].kind ||
        a[i].target != b[i].target || a[i].magnitude != b[i].magnitude ||
        a[i].duration != b[i].duration) {
      return false;
    }
  }
  return true;
}

TEST(Plan, CompilationIsDeterministicInSeed) {
  const ChaosConfig campaign = default_campaign(300.0);
  const Plan a = compile_plan(7, campaign, 8);
  const Plan b = compile_plan(7, campaign, 8);
  ASSERT_GT(a.events.size(), 0u);
  EXPECT_TRUE(same_events(a.events, b.events));
  const Plan c = compile_plan(8, campaign, 8);
  EXPECT_FALSE(same_events(a.events, c.events));
}

TEST(Plan, EventsSortedWithinHorizonAndEveryClassFires) {
  const ChaosConfig campaign = default_campaign(300.0);
  int per_kind[6] = {0};
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Plan plan = compile_plan(seed, campaign, 8);
    double prev = 0.0;
    for (const auto& e : plan.events) {
      EXPECT_GE(e.time, prev);
      EXPECT_LT(e.time, campaign.horizon);
      per_kind[static_cast<int>(e.kind)] += 1;
      prev = e.time;
    }
  }
  // Rare classes (partitions fire ~2x per horizon) may skip one seed's
  // exponential draw, but every class fires across a handful of seeds.
  for (int k = 0; k < 6; ++k) EXPECT_GT(per_kind[k], 0) << "fault class " << k;
}

TEST(Plan, ProtectedWorkersExemptFromCrashesAndStragglers) {
  const ChaosConfig campaign = default_campaign(600.0);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Plan plan = compile_plan(seed, campaign, 6, /*protected_workers=*/2);
    for (const auto& e : plan.events) {
      if (e.kind == FaultKind::kWorkerCrash || e.kind == FaultKind::kStraggler) {
        EXPECT_GE(e.target, 2u);
        EXPECT_LT(e.target, 6u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

wq::TaskSpec sample_spec(uint64_t id) {
  wq::TaskSpec spec;
  spec.id = id;
  spec.category = "cat-a";
  spec.output_bytes = 12345;
  spec.exec_seconds = 7.5;
  spec.true_cores = 2.0;
  spec.true_peak = Resources{2.0, 3e9, 4e9};
  spec.peak_fraction = 0.5;
  wq::InputFile f;
  f.name = "env.tar.gz";
  f.size_bytes = 1000;
  f.cacheable = true;
  f.unpack_seconds = 0.25;
  spec.inputs.push_back(std::move(f));
  return spec;
}

Journal sample_journal() {
  Journal j;
  j.worker_added(0, Resources{8.0, 16e9, 32e9}, 0.0, 0.0);
  j.submitted(sample_spec(1), 0.0);
  j.dispatched(1, 0, 0, Resources{1.0, 2e9, 4e9}, 0.1);
  j.observed_exhaustion(1, "cat-a", Resources{1.0, 2e9, 4e9}, "memory", 1.0);
  j.dispatched(1, 0, 1, Resources{8.0, 16e9, 32e9}, 1.5);
  j.completed(1, Resources{1.0, 3e9, 1e9}, 9.0);
  j.submitted(sample_spec(2), 0.0);
  j.failed(2, "exhaustion-limit", 12.0);
  j.submitted(sample_spec(3), 0.0);
  j.cancelled(3, 13.0);
  j.worker_lost(0, 14.0);
  return j;
}

TEST(Journal, JsonlRoundTripIsLossless) {
  const Journal original = sample_journal();
  const std::string text = original.to_jsonl();
  const Journal parsed = Journal::from_jsonl(text);
  ASSERT_EQ(parsed.size(), original.size());
  // Byte-identical re-serialization == every field survived the round trip.
  EXPECT_EQ(parsed.to_jsonl(), text);
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.entries()[i].kind, original.entries()[i].kind);
    EXPECT_EQ(parsed.entries()[i].ts, original.entries()[i].ts);
  }
  // The submitted spec survives in full.
  const JournalEntry& sub = parsed.entries()[1];
  ASSERT_EQ(sub.kind, EntryKind::kSubmitted);
  EXPECT_EQ(sub.spec.category, "cat-a");
  ASSERT_EQ(sub.spec.inputs.size(), 1u);
  EXPECT_EQ(sub.spec.inputs[0].name, "env.tar.gz");
  EXPECT_EQ(sub.spec.inputs[0].size_bytes, 1000);
}

TEST(Journal, FromJsonlIgnoresBlankLinesAndRejectsGarbage) {
  const std::string text = sample_journal().to_jsonl() + "\n   \n";
  EXPECT_EQ(Journal::from_jsonl(text).size(), sample_journal().size());
  EXPECT_THROW(Journal::from_jsonl("{\"t\":\"nonsense\",\"ts\":0}\n"), Error);
}

TEST(Journal, FileSinkMirrorsEveryRecordAsWritten) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lfm_journal_test.jsonl").string();
  std::string in_memory;
  {
    Journal j(path);
    j.worker_added(0, Resources{8.0, 16e9, 32e9}, 0.0, 0.0);
    j.submitted(sample_spec(1), 0.0);
    j.dispatched(1, 0, 0, Resources{1.0, 2e9, 4e9}, 0.1);
    j.completed(1, Resources{1.0, 3e9, 1e9}, 9.0);
    j.flush();
    in_memory = j.to_jsonl();
  }
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), in_memory);
  const Journal reread = Journal::from_jsonl(contents.str());
  EXPECT_EQ(reread.size(), 4u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Master fault primitives & recovery (small end-to-end scenarios)
// ---------------------------------------------------------------------------

LabelerConfig node_config() {
  LabelerConfig cfg;
  cfg.strategy = Strategy::kOracle;
  cfg.whole_node = Resources{8.0, 8e9, 16e9};
  cfg.guess = Resources{1.0, 1.5e9, 2e9};
  return cfg;
}

wq::TaskSpec simple_task(uint64_t id, double runtime, double mem = 100e6) {
  wq::TaskSpec t;
  t.id = id;
  t.category = "uniform";
  t.exec_seconds = runtime;
  t.true_cores = 1.0;
  t.true_peak = Resources{1.0, mem, 500e6};
  return t;
}

struct Rig {
  sim::Simulation sim;
  sim::Network network;
  alloc::Labeler labeler;
  wq::Master master;
  explicit Rig(LabelerConfig cfg = node_config(), wq::MasterConfig mcfg = {})
      : network(sim, {}), labeler(cfg), master(sim, network, labeler, mcfg) {}
};

TEST(MasterFaults, StragglerStretchesRuntime) {
  Rig nominal;
  nominal.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  nominal.master.submit(simple_task(1, 10.0));
  const double base = nominal.master.run().makespan;

  Rig slow;
  slow.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  slow.master.fault_worker_speed(0, 0.5);  // 2x slower
  slow.master.submit(simple_task(1, 10.0));
  const double stretched = slow.master.run().makespan;
  EXPECT_GT(stretched, base + 9.0);  // 10 s of work became ~20 s
}

TEST(MasterFaults, NetworkScaleSlowsTransfers) {
  auto with_scale = [](double scale) {
    Rig rig;
    rig.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
    if (scale != 1.0) rig.master.fault_network_scale(scale);
    wq::TaskSpec t = simple_task(1, 1.0);
    wq::InputFile f;
    f.name = "data.bin";
    f.size_bytes = 1250LL * 1000 * 1000;  // ~1 s at nominal 1.25 GB/s
    t.inputs.push_back(std::move(f));
    rig.master.submit(std::move(t));
    return rig.master.run().makespan;
  };
  const double nominal = with_scale(1.0);
  const double degraded = with_scale(0.25);  // quarter bandwidth: ~+3 s
  EXPECT_GT(degraded, nominal + 2.0);
}

TEST(MasterFaults, FsStallMultipliesDispatchCosts) {
  auto with_stall = [](double factor) {
    Rig rig;
    rig.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
    if (factor != 1.0) rig.master.fault_fs_stall(factor);
    wq::TaskSpec t = simple_task(1, 1.0);
    wq::InputFile f;
    f.name = "env.tar.gz";
    f.size_bytes = 1000;
    f.cacheable = true;
    f.unpack_seconds = 1.0;
    t.inputs.push_back(std::move(f));
    rig.master.submit(std::move(t));
    return rig.master.run().makespan;
  };
  const double nominal = with_stall(1.0);
  const double stalled = with_stall(8.0);  // 1 s unpack -> 8 s
  EXPECT_GT(stalled, nominal + 6.0);
}

TEST(MasterFaults, SpuriousKillRequeuesWithoutTeachingLabeler) {
  Rig rig;
  rig.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  rig.master.submit(simple_task(1, 10.0));
  rig.sim.schedule(5.0, [&] { rig.master.fault_spurious_kill(0); });
  const wq::MasterStats stats = rig.master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_EQ(stats.spurious_kills, 1);
  EXPECT_EQ(stats.exhaustion_retries, 0);
  ASSERT_EQ(rig.master.records().size(), 1u);
  EXPECT_EQ(rig.master.records()[0].requeues, 1);
  // The killed attempt fed the labeler nothing; the rerun fed it once.
  EXPECT_EQ(rig.labeler.total_samples(),
            stats.tasks_completed + stats.lost_results);
  // Killed before the run finished, so no result was in flight.
  EXPECT_EQ(stats.lost_results, 0);
}

TEST(MasterFaults, CrashedWorkerRejoinsAndFinishesWork) {
  Rig rig;
  rig.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  for (uint64_t id = 1; id <= 4; ++id) rig.master.submit(simple_task(id, 10.0));
  rig.sim.schedule(5.0, [&] { rig.master.fault_crash_worker(0, /*rejoin=*/3.0); });
  const wq::MasterStats stats = rig.master.run();
  EXPECT_EQ(stats.tasks_completed, 4);
  EXPECT_EQ(rig.master.worker_crashes(), 1);
}

TEST(MasterRecovery, JournalRoundTripYieldsIdenticalFinalState) {
  // Uninterrupted reference run.
  wq::MasterConfig mcfg;
  Rig ref;
  ref.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  ref.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  for (uint64_t id = 1; id <= 12; ++id) ref.master.submit(simple_task(id, 5.0));
  const wq::MasterStats ref_stats = ref.master.run();
  EXPECT_EQ(ref_stats.tasks_completed, 12);

  // Same workload, journaled, killed mid-run.
  Rig dying;
  Journal journal;
  dying.master.set_journal(&journal);
  dying.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  dying.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  int first_fires = 0;
  std::unordered_map<uint64_t, int> fired;
  dying.master.set_on_complete([&](const wq::TaskRecord& rec) {
    ++first_fires;
    fired[rec.spec.id] += 1;
  });
  for (uint64_t id = 1; id <= 12; ++id) dying.master.submit(simple_task(id, 5.0));
  dying.sim.run_until(ref_stats.makespan * 0.5);
  EXPECT_GT(first_fires, 0);
  EXPECT_LT(first_fires, 12);

  // A fresh master recovers from the JSONL round-trip of the journal.
  Rig recovered;
  recovered.master.set_on_complete(
      [&](const wq::TaskRecord& rec) { fired[rec.spec.id] += 1; });
  recovered.master.recover(Journal::from_jsonl(journal.to_jsonl()));
  const wq::MasterStats stats = recovered.master.run();

  // Recovered terminals count toward tasks_completed too; tasks_recovered
  // records how many of them were replayed rather than run.
  EXPECT_EQ(stats.tasks_recovered, first_fires);
  EXPECT_EQ(stats.tasks_completed, 12);
  ASSERT_EQ(recovered.master.records().size(), 12u);
  for (const auto& rec : recovered.master.records()) {
    EXPECT_EQ(rec.state, wq::TaskState::kDone);
    EXPECT_GE(rec.finish_time, 0.0);
  }
  // Exactly-once across the restart: every task's on_complete fired once in
  // total over both masters.
  ASSERT_EQ(fired.size(), 12u);
  for (const auto& [id, count] : fired) EXPECT_EQ(count, 1) << "task " << id;
  // The labeler relearned the journaled observations exactly once each.
  EXPECT_EQ(recovered.labeler.total_samples(),
            stats.tasks_completed + stats.lost_results);
}

TEST(MasterRecovery, ExhaustionCountsSurviveRestart) {
  // A 3 GB task under a 1.5 GB Guess exhausts once, then retries at whole
  // node. Kill the master after the exhaustion but before the retry lands:
  // the recovered master must not grant the task a fresh exhaustion budget.
  LabelerConfig cfg = node_config();
  cfg.strategy = Strategy::kGuess;
  Rig dying(cfg);
  Journal journal;
  dying.master.set_journal(&journal);
  dying.master.add_worker({Resources{8.0, 8e9, 16e9}, 0.0});
  dying.master.submit(simple_task(1, 10.0, 3e9));
  dying.sim.run_until(11.0);  // first attempt exhausted, retry in flight

  Rig recovered(cfg);
  recovered.master.recover(Journal::from_jsonl(journal.to_jsonl()));
  const wq::MasterStats stats = recovered.master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  ASSERT_EQ(recovered.master.records().size(), 1u);
  // The journaled exhaustion was restored, not forgotten.
  EXPECT_EQ(recovered.master.records()[0].exhaustions, 1);
  EXPECT_EQ(recovered.labeler.total_exhaustions(), 1);
}

// ---------------------------------------------------------------------------
// Property-style fuzz: seeded fault schedules uphold the soak invariants
// ---------------------------------------------------------------------------

struct FuzzOutcome {
  wq::MasterStats stats;
  int64_t labeler_samples = 0;
  int64_t labeler_exhaustions = 0;
  size_t tasks = 0;
  bool all_terminal = true;
  bool completions_exactly_once = true;
};

FuzzOutcome run_fuzz_seed(uint64_t seed) {
  constexpr int kPool = 4;
  constexpr double kFuzzHorizon = 120.0;

  LabelerConfig lcfg;
  lcfg.strategy = Strategy::kAuto;
  lcfg.whole_node = Resources{16.0, 64e9, 128e9};
  lcfg.guess = Resources{1.0, 2e9, 4e9};
  lcfg.warmup_samples = 3;

  wq::MasterConfig mcfg;
  mcfg.retry.backoff_base = 0.5;
  mcfg.retry.jitter_fraction = 0.2;
  mcfg.retry.jitter_seed = seed;

  Rig rig(lcfg, mcfg);
  std::unordered_map<uint64_t, int> completions;
  rig.master.set_on_complete(
      [&](const wq::TaskRecord& rec) { completions[rec.spec.id] += 1; });

  const Plan plan =
      compile_plan(seed, default_campaign(kFuzzHorizon), kPool, /*protected=*/1);
  Injector injector(rig.sim, rig.master, plan);
  injector.arm();

  for (int w = 0; w < kPool; ++w) {
    rig.master.add_worker({Resources{16.0, 64e9, 128e9}, 0.0});
  }
  Rng rng(seed);
  constexpr int kFuzzTasks = 60;
  for (int i = 0; i < kFuzzTasks; ++i) {
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    t.category = "cat-" + std::to_string(i % 4);
    t.exec_seconds = rng.uniform(5.0, 20.0);
    t.true_cores = 1.0;
    t.true_peak = Resources{1.0, rng.uniform(0.5e9, 2.5e9), rng.uniform(1e9, 2e9)};
    t.output_bytes = 1000 * 1000;
    rig.master.submit(std::move(t));
  }

  FuzzOutcome out;
  out.stats = rig.master.run();
  out.labeler_samples = rig.labeler.total_samples();
  out.labeler_exhaustions = rig.labeler.total_exhaustions();
  out.tasks = rig.master.records().size();
  for (const auto& rec : rig.master.records()) {
    if (rec.state != wq::TaskState::kDone) out.all_terminal = false;
  }
  out.completions_exactly_once = completions.size() == out.tasks;
  for (const auto& [id, count] : completions) {
    if (count != 1) out.completions_exactly_once = false;
  }
  return out;
}

TEST(ChaosFuzz, SeededFaultSchedulesUpholdInvariants) {
  for (uint64_t seed = 9000; seed < 9012; ++seed) {
    const FuzzOutcome out = run_fuzz_seed(seed);
    EXPECT_EQ(out.stats.tasks_completed + out.stats.tasks_failed +
                  out.stats.tasks_cancelled,
              static_cast<int64_t>(out.tasks))
        << "seed " << seed;
    EXPECT_TRUE(out.all_terminal) << "seed " << seed;
    EXPECT_TRUE(out.completions_exactly_once) << "seed " << seed;
    EXPECT_EQ(out.labeler_samples,
              out.stats.tasks_completed + out.stats.lost_results)
        << "seed " << seed;
    EXPECT_EQ(out.labeler_exhaustions, out.stats.exhaustion_retries)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace lfm::chaos
