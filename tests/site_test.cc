// Unit tests for site presets and runtime cold-start models (Tables I, III).
#include <gtest/gtest.h>

#include "sim/site.h"
#include "util/units.h"

namespace lfm::sim {
namespace {

TEST(Runtimes, CondaIsEnvVarOnly) {
  const RuntimeCosts conda = conda_runtime();
  EXPECT_EQ(conda.namespace_seconds, 0.0);
  EXPECT_EQ(conda.image_mount_seconds, 0.0);
  EXPECT_GT(conda.cold_start_seconds(), 0.0);
}

TEST(Runtimes, CondaBeatsEveryContainer) {
  // Table I's headline: "Conda is significantly faster than containers".
  const double conda = conda_runtime().cold_start_seconds();
  for (const RuntimeCosts& container :
       {singularity_runtime(), shifter_runtime(), docker_runtime()}) {
    EXPECT_GT(container.cold_start_seconds(), conda * 3.0) << container.name;
  }
}

TEST(Runtimes, ContainersPayNamespaceAndMountCosts) {
  for (const RuntimeCosts& container :
       {singularity_runtime(), shifter_runtime(), docker_runtime()}) {
    EXPECT_GT(container.namespace_seconds, 0.0) << container.name;
    EXPECT_GT(container.image_mount_seconds, 0.0) << container.name;
    EXPECT_GT(container.controller_seconds, 0.0) << container.name;
  }
}

TEST(Sites, AllFivePresent) {
  const auto sites = all_sites();
  ASSERT_EQ(sites.size(), 5u);
  std::set<std::string> names;
  for (const auto& s : sites) names.insert(s.name);
  EXPECT_EQ(names, (std::set<std::string>{"Theta", "Cori", "ND-CRC", "NSCC", "AWS"}));
}

TEST(Sites, PaperNodeShapes) {
  EXPECT_EQ(theta().node.cores, 64);       // KNL
  EXPECT_EQ(cori().node.cores, 32);        // Haswell
  EXPECT_EQ(nscc().node.cores, 24);        // 2x12 (paper §VI.C.3)
  EXPECT_EQ(nscc().node.memory_bytes, 96_GB);
}

TEST(Sites, RuntimePairingsMatchTableI) {
  EXPECT_NE(theta().runtime("conda"), nullptr);
  EXPECT_NE(theta().runtime("singularity"), nullptr);
  EXPECT_NE(cori().runtime("shifter"), nullptr);
  EXPECT_NE(aws_ec2().runtime("docker"), nullptr);
  EXPECT_EQ(theta().runtime("docker"), nullptr);
  EXPECT_EQ(theta().runtime("bogus"), nullptr);
}

TEST(Sites, CampusClusterHasWeakestMetadataServer) {
  // ND-CRC's NFS should saturate before the Lustre installations.
  EXPECT_LT(nd_crc().shared_fs.metadata_capacity, theta().shared_fs.metadata_capacity);
  EXPECT_LT(nd_crc().shared_fs.metadata_capacity, cori().shared_fs.metadata_capacity);
}

TEST(Sites, PositiveParameters) {
  for (const auto& s : all_sites()) {
    EXPECT_GT(s.node.cores, 0) << s.name;
    EXPECT_GT(s.max_nodes, 0) << s.name;
    EXPECT_GT(s.shared_fs.metadata_capacity, 0.0) << s.name;
    EXPECT_GT(s.shared_fs.aggregate_bandwidth, 0.0) << s.name;
    EXPECT_GT(s.local_disk.bandwidth, 0.0) << s.name;
    EXPECT_GT(s.network.bandwidth, 0.0) << s.name;
    EXPECT_FALSE(s.runtimes.empty()) << s.name;
    EXPECT_EQ(s.runtimes[0].name, "conda") << s.name;
  }
}

}  // namespace
}  // namespace lfm::sim
