// Unit tests for the conda-pack-style packer: in-memory archives, the ustar
// writer/reader (round-trip and interop with tar(1) format rules), on-disk
// pack/unpack, and prefix relocation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "pkg/packer.h"

namespace lfm::pkg {
namespace {

namespace fs = std::filesystem;

Bytes text_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Archive, BasicAccounting) {
  Archive a;
  a.add_directory("dir");
  a.add_file("dir/file1", text_bytes("hello"));
  a.add_file("dir/file2", text_bytes("world!"));
  EXPECT_EQ(a.file_count(), 2u);
  EXPECT_EQ(a.total_bytes(), 11);
  ASSERT_NE(a.find("dir/file1"), nullptr);
  EXPECT_EQ(a.find("missing"), nullptr);
}

TEST(Tar, RoundtripSimple) {
  Archive a;
  a.add_directory("env");
  a.add_directory("env/lib");
  a.add_file("env/lib/mod.py", text_bytes("import os\n"), 0644);
  a.add_file("env/bin/python", text_bytes("\x7f""ELF..."), 0755);

  const Bytes tar = write_tar(a);
  EXPECT_EQ(tar.size() % 512, 0u);

  const Archive back = read_tar(tar);
  ASSERT_EQ(back.entries().size(), 4u);
  const auto* mod = back.find("env/lib/mod.py");
  ASSERT_NE(mod, nullptr);
  EXPECT_EQ(mod->data, text_bytes("import os\n"));
  EXPECT_EQ(mod->mode, 0644u);
  const auto* python = back.find("env/bin/python");
  ASSERT_NE(python, nullptr);
  EXPECT_EQ(python->mode, 0755u);
}

TEST(Tar, RoundtripEmptyFileAndEmptyArchive) {
  Archive a;
  a.add_file("empty", Bytes{});
  const Archive back = read_tar(write_tar(a));
  ASSERT_NE(back.find("empty"), nullptr);
  EXPECT_TRUE(back.find("empty")->data.empty());

  const Archive none = read_tar(write_tar(Archive{}));
  EXPECT_TRUE(none.entries().empty());
}

TEST(Tar, RoundtripBinaryPayload) {
  Bytes payload;
  for (int i = 0; i < 100000; ++i) payload.push_back(static_cast<uint8_t>(i * 31));
  Archive a;
  a.add_file("blob.bin", payload);
  const Archive back = read_tar(write_tar(a));
  EXPECT_EQ(back.find("blob.bin")->data, payload);
}

TEST(Tar, LongPathsUsePrefixSplit) {
  // >100 chars but splittable at a '/' boundary.
  std::string dir = "very/long/path";
  for (int i = 0; i < 10; ++i) dir += "/component" + std::to_string(i);
  Archive a;
  a.add_file(dir + "/leaf.txt", text_bytes("x"));
  ASSERT_GT(dir.size(), 100u);
  const Archive back = read_tar(write_tar(a));
  ASSERT_EQ(back.entries().size(), 1u);
  EXPECT_EQ(back.entries()[0].path, dir + "/leaf.txt");
}

TEST(Tar, RejectsOverlongPath) {
  Archive a;
  a.add_file(std::string(300, 'x'), text_bytes("y"));  // no '/' to split at
  EXPECT_THROW(write_tar(a), Error);
}

TEST(Tar, RejectsCorruptedChecksum) {
  Archive a;
  a.add_file("f", text_bytes("data"));
  Bytes tar = write_tar(a);
  tar[0] ^= 0xff;  // clobber the name field -> checksum mismatch
  EXPECT_THROW(read_tar(tar), Error);
}

TEST(Tar, RejectsTruncatedData) {
  Archive a;
  a.add_file("f", text_bytes(std::string(600, 'a')));
  Bytes tar = write_tar(a);
  tar.resize(512 + 100);  // header + partial data
  EXPECT_THROW(read_tar(tar), Error);
}

TEST(Tar, SystemTarCanList) {
  // Interop check: the ustar output is readable by tar(1).
  Archive a;
  a.add_directory("envdir");
  a.add_file("envdir/hello.txt", text_bytes("hi from lfm\n"));
  const Bytes tar = write_tar(a);

  const fs::path tmp = fs::temp_directory_path() / "lfm_tar_interop.tar";
  {
    std::ofstream out(tmp, std::ios::binary);
    out.write(reinterpret_cast<const char*>(tar.data()),
              static_cast<std::streamsize>(tar.size()));
  }
  const std::string cmd = "tar -tf " + tmp.string() + " > " + tmp.string() + ".lst 2>/dev/null";
  if (std::system(cmd.c_str()) == 0) {
    std::ifstream in(tmp.string() + ".lst");
    std::string listing((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(listing.find("envdir/hello.txt"), std::string::npos);
  }
  fs::remove(tmp);
  fs::remove(tmp.string() + ".lst");
}

TEST(Packer, PackUnpackDirectoryRoundtrip) {
  const fs::path root = fs::temp_directory_path() / "lfm_pack_src";
  const fs::path dest = fs::temp_directory_path() / "lfm_pack_dst";
  fs::remove_all(root);
  fs::remove_all(dest);
  fs::create_directories(root / "lib" / "pkg");
  {
    std::ofstream(root / "lib" / "pkg" / "a.py") << "print('a')\n";
    std::ofstream(root / "lib" / "pkg" / "b.so") << std::string(1000, '\x01');
    std::ofstream(root / "activate") << "#!/bin/sh\nexport PREFIX=/home/user/env\n";
  }

  const Archive a = pack_directory(root.string());
  EXPECT_EQ(a.file_count(), 3u);
  unpack_to(a, dest.string());

  std::ifstream in(dest / "lib" / "pkg" / "a.py");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "print('a')\n");
  fs::remove_all(root);
  fs::remove_all(dest);
}

TEST(Packer, PackDirectoryRejectsMissing) {
  EXPECT_THROW(pack_directory("/nonexistent/lfm/path"), Error);
}

TEST(Packer, UnpackRejectsTraversal) {
  Archive a;
  a.add_file("../escape.txt", text_bytes("evil"));
  EXPECT_THROW(unpack_to(a, (fs::temp_directory_path() / "lfm_safe").string()), Error);
}

TEST(Packer, UnpackRejectsCraftedTraversalArchive) {
  // A hostile archive that arrives over the wire as genuine ustar bytes:
  // our own writer emits whatever paths the archive carries, so the attack
  // survives write_tar -> read_tar intact; only unpack_to may stop it.
  const fs::path root = fs::temp_directory_path() / "lfm_traversal_root";
  const fs::path marker = fs::temp_directory_path() / "lfm_escape_marker.txt";
  fs::remove_all(root);
  fs::remove(marker);

  Archive crafted;
  crafted.add_file("ok.txt", text_bytes("benign"));
  crafted.add_file("nested/../../lfm_escape_marker.txt", text_bytes("evil"));
  const Archive received = read_tar(write_tar(crafted));
  ASSERT_EQ(received.entries().size(), 2u);

  EXPECT_THROW(unpack_to(received, root.string()), Error);
  // The traversal entry must not have materialized outside the root.
  EXPECT_FALSE(fs::exists(marker));
  fs::remove_all(root);
}

TEST(Packer, UnpackRejectsAbsolutePathArchive) {
  const fs::path victim = fs::temp_directory_path() / "lfm_absolute_victim.txt";
  fs::remove(victim);

  Archive crafted;
  crafted.add_file(victim.string(), text_bytes("evil"));
  const Archive received = read_tar(write_tar(crafted));

  const fs::path root = fs::temp_directory_path() / "lfm_absolute_root";
  fs::remove_all(root);
  EXPECT_THROW(unpack_to(received, root.string()), Error);
  EXPECT_FALSE(fs::exists(victim));
  fs::remove_all(root);
}

TEST(Packer, UnpackRejectsEmptyEntryPath) {
  Archive a;
  a.add_file("", text_bytes("x"));
  const fs::path root = fs::temp_directory_path() / "lfm_empty_root";
  EXPECT_THROW(unpack_to(a, root.string()), Error);
  fs::remove_all(root);
}

TEST(Packer, RelocatePrefixRewritesTextOnly) {
  Archive a;
  a.add_file("activate", text_bytes("export PREFIX=/home/user/miniconda3/envs/hep\n"));
  a.add_file("pip.conf", text_bytes("prefix=/home/user/miniconda3/envs/hep"));
  Bytes binary = text_bytes("/home/user/miniconda3/envs/hep");
  binary.insert(binary.begin(), 0);  // NUL byte -> treated as binary
  a.add_file("lib.so", binary);

  const int rewritten =
      relocate_prefix(a, "/home/user/miniconda3/envs/hep", "/tmp/worker42/env");
  EXPECT_EQ(rewritten, 2);
  EXPECT_EQ(a.find("activate")->data,
            text_bytes("export PREFIX=/tmp/worker42/env\n"));
  // Binary entry untouched.
  EXPECT_EQ(a.find("lib.so")->data[0], 0);
}

TEST(Packer, RelocatePrefixHandlesMultipleOccurrences) {
  Archive a;
  a.add_file("cfg", text_bytes("/old /old/bin /old/lib"));
  relocate_prefix(a, "/old", "/brand-new");
  EXPECT_EQ(a.find("cfg")->data,
            text_bytes("/brand-new /brand-new/bin /brand-new/lib"));
}

TEST(Packer, RelocateEmptyPrefixThrows) {
  Archive a;
  EXPECT_THROW(relocate_prefix(a, "", "/x"), Error);
}

TEST(Packer, FullCondaPackFlow) {
  // The §V.D mechanism end to end: pack on "master", ship bytes, unpack on
  // "worker", relocate for the worker's prefix.
  const fs::path master_env = fs::temp_directory_path() / "lfm_master_env";
  const fs::path worker_env = fs::temp_directory_path() / "lfm_worker_env";
  fs::remove_all(master_env);
  fs::remove_all(worker_env);
  fs::create_directories(master_env / "bin");
  std::ofstream(master_env / "bin" / "activate")
      << "export CONDA_PREFIX=" << master_env.string() << "\n";

  Archive packed = pack_directory(master_env.string());
  const Bytes wire = write_tar(packed);  // what travels to the worker

  Archive received = read_tar(wire);
  relocate_prefix(received, master_env.string(), worker_env.string());
  unpack_to(received, worker_env.string());

  std::ifstream in(worker_env / "bin" / "activate");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "export CONDA_PREFIX=" + worker_env.string() + "\n");
  fs::remove_all(master_env);
  fs::remove_all(worker_env);
}

}  // namespace
}  // namespace lfm::pkg
