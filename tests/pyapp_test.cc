// Tests for python_app: shipped Python source running through the
// DataFlowKernel, including under real LFM isolation and limits.
#include <gtest/gtest.h>

#include "flow/dfk.h"
#include "flow/pyapp.h"

namespace lfm::flow {
namespace {

using serde::Value;
using serde::ValueList;

const char* kUserModule = R"(
import parsl
from parsl import python_app

CONFIG = 'module level state that must not ship'

@python_app
def keep(values, threshold):
    kept = [v for v in values if v >= threshold]
    return {'count': len(kept), 'total': sum(kept)}

@python_app
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

@python_app
def fails(x):
    raise ValueError('bad input: ' + str(x))
)";

TEST(PythonApp, RunsThroughInlineExecutor) {
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  App app = python_app(kUserModule, "keep");
  const Future f =
      dfk.submit(app, {Arg(Value(ValueList{Value(3), Value(8), Value(5)})),
                       Arg(Value(5))});
  const Value result = f.result();
  EXPECT_EQ(result.at("count").as_int(), 2);
  EXPECT_EQ(result.at("total").as_int(), 13);
}

TEST(PythonApp, RecursionWorksInShippedSource) {
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(python_app(kUserModule, "fib"), {Arg(Value(12))});
  EXPECT_EQ(f.result().as_int(), 144);
}

TEST(PythonApp, PythonExceptionBecomesTaskException) {
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(python_app(kUserModule, "fails"), {Arg(Value(7))});
  EXPECT_EQ(f.outcome().status, monitor::TaskStatus::kException);
  EXPECT_NE(f.outcome().error.find("ValueError"), std::string::npos);
  EXPECT_NE(f.outcome().error.find("bad input: 7"), std::string::npos);
}

TEST(PythonApp, MissingFunctionThrowsAtConstruction) {
  EXPECT_THROW(python_app(kUserModule, "ghost"), Error);
}

TEST(PythonApp, DecoratorsAndModuleStateDoNotShip) {
  const App app = python_app(kUserModule, "keep");
  EXPECT_EQ(app.python_source.find("@python_app"), std::string::npos);
  EXPECT_EQ(app.python_source.find("CONFIG"), std::string::npos);
  EXPECT_NE(app.python_source.find("def keep"), std::string::npos);
}

TEST(PythonApp, RunsInsideRealLfm) {
  // The full paper pipeline: shipped source, fresh interpreter, forked LFM
  // child, pickled result back over the pipe.
  LocalLfmExecutor exec(2);
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(python_app(kUserModule, "fib"), {Arg(Value(14))});
  EXPECT_EQ(f.result().as_int(), 377);
  exec.drain();
}

TEST(PythonApp, StepBudgetContainsRunawayPython) {
  PythonAppOptions options;
  options.interpreter.max_steps = 50000;
  const char* runaway = "def spin():\n    while True:\n        pass\n";
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(python_app(runaway, "spin", options), {});
  EXPECT_EQ(f.outcome().status, monitor::TaskStatus::kException);
  EXPECT_NE(f.outcome().error.find("step budget"), std::string::npos);
}

TEST(PythonApp, LfmMemoryLimitKillsLeakyPython) {
  // A Python loop hoarding strings allocates real memory in the LFM child;
  // the monitor kills it without harming this process.
  const char* leaky = R"(
def hoard(chunks):
    data = []
    i = 0
    while i < chunks:
        data.append('x' * 1000000)
        i = i + 1
    return len(data)
)";
  PythonAppOptions options;
  options.limits.memory_bytes = 64LL << 20;
  options.limits.wall_time = 60.0;
  LocalLfmExecutor exec(1);
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(python_app(leaky, "hoard", options),
                              {Arg(Value(int64_t{100000}))});
  EXPECT_EQ(f.outcome().status, monitor::TaskStatus::kLimitExceeded);
  EXPECT_EQ(f.outcome().violated_resource, "memory");
  exec.drain();
}

TEST(PythonApp, ChainedPythonAppsFormDag) {
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const char* stages = R"(
def double_all(xs):
    return [x * 2 for x in xs]

def total(xs):
    return sum(xs)
)";
  const Future doubled =
      dfk.submit(python_app(stages, "double_all"),
                 {Arg(Value(ValueList{Value(1), Value(2), Value(3)}))});
  // The DAG at work: the first stage's future is the second stage's arg.
  const Future summed = dfk.submit(python_app(stages, "total"), {Arg(doubled)});
  EXPECT_EQ(summed.result().as_int(), 12);
}


TEST(PythonApp, FStringsSurviveShipping) {
  const char* src = R"(
def label(task, mem):
    return f'{task}: {mem / 1000000:.1f} MB'
)";
  InlineExecutor exec;
  DataFlowKernel dfk(exec);
  const Future f = dfk.submit(python_app(src, "label"),
                              {Arg(Value("hep")), Arg(Value(int64_t{84000000}))});
  EXPECT_EQ(f.result().as_str(), "hep: 84.0 MB");
}

}  // namespace
}  // namespace lfm::flow
