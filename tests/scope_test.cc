// Tests for scope analysis and the self-containment check.
#include <gtest/gtest.h>

#include "pysrc/parser.h"
#include "pysrc/scope.h"
#include "util/error.h"

namespace lfm::pysrc {
namespace {

ScopeReport analyze(const char* src, const char* fn = "f") {
  return analyze_function_scope(parse_module(src), fn);
}

TEST(Scope, ParametersAreBound) {
  const auto report = analyze("def f(a, b=1, *args, **kw):\n    return a + b\n");
  EXPECT_TRUE(report.bound.count("a"));
  EXPECT_TRUE(report.bound.count("b"));
  EXPECT_TRUE(report.bound.count("args"));
  EXPECT_TRUE(report.bound.count("kw"));
  EXPECT_TRUE(report.free_names(default_builtins()).empty());
}

TEST(Scope, AssignmentsBind) {
  const auto report = analyze("def f():\n    x = 1\n    y, z = 2, 3\n    return x + y + z\n");
  EXPECT_TRUE(report.bound.count("x"));
  EXPECT_TRUE(report.bound.count("y"));
  EXPECT_TRUE(report.bound.count("z"));
  EXPECT_TRUE(report.free_names(default_builtins()).empty());
}

TEST(Scope, ImportsBindVisibleName) {
  const auto report = analyze(
      "def f():\n"
      "    import numpy as np\n"
      "    import os.path\n"
      "    from math import sqrt\n"
      "    return np, os, sqrt\n");
  EXPECT_TRUE(report.bound.count("np"));
  EXPECT_TRUE(report.bound.count("os"));     // import os.path binds 'os'
  EXPECT_TRUE(report.bound.count("sqrt"));
  EXPECT_TRUE(report.free_names(default_builtins()).empty());
}

TEST(Scope, FreeNamesDetected) {
  const auto report = analyze("def f(x):\n    return x + MODULE_CONSTANT\n");
  const auto free = report.free_names(default_builtins());
  EXPECT_EQ(free, (std::set<std::string>{"MODULE_CONSTANT"}));
}

TEST(Scope, BuiltinsNotFree) {
  const auto report = analyze("def f(xs):\n    return [len(x) for x in sorted(xs)]\n");
  EXPECT_TRUE(report.free_names(default_builtins()).empty());
}

TEST(Scope, ForAndWithTargetsBind) {
  const auto report = analyze(
      "def f(items, path):\n"
      "    total = 0\n"
      "    for k, v in items:\n"
      "        total += v\n"
      "    with open(path) as fh:\n"
      "        data = fh.read()\n"
      "    return total, data\n");
  EXPECT_TRUE(report.free_names(default_builtins()).empty());
}

TEST(Scope, ExceptionNameBinds) {
  const auto report = analyze(
      "def f():\n    try:\n        pass\n    except ValueError as e:\n        return e\n");
  EXPECT_TRUE(report.free_names(default_builtins()).empty());
}

TEST(Scope, ComprehensionTargetsBind) {
  const auto report = analyze("def f(rows):\n    return {k: v for k, v in rows}\n");
  EXPECT_TRUE(report.free_names(default_builtins()).empty());
}

TEST(Scope, LambdaParamsDoNotLeakAsFree) {
  const auto report = analyze("def f(xs):\n    return sorted(xs, key=lambda p: p[1])\n");
  EXPECT_TRUE(report.free_names(default_builtins()).empty());
}

TEST(Scope, GlobalDeclarationIsFree) {
  const auto report = analyze("def f():\n    global counter\n    counter = 1\n");
  const auto free = report.free_names(default_builtins());
  EXPECT_TRUE(free.count("counter"));
}

TEST(Scope, NestedFunctionFreeNamesPropagate) {
  const auto report = analyze(
      "def f(x):\n"
      "    def inner(y):\n"
      "        return y + x + OUTSIDE\n"
      "    return inner\n");
  const auto free = report.free_names(default_builtins());
  // x is bound by f; OUTSIDE is genuinely free.
  EXPECT_TRUE(free.count("OUTSIDE"));
  EXPECT_FALSE(free.count("y"));
  // NOTE: our conservative nested handling re-reports x as referenced but
  // it is bound in f, so it must not be free.
  EXPECT_FALSE(free.count("x"));
}

TEST(Scope, AugmentedAssignReadsFirst) {
  const auto report = analyze("def f():\n    acc += 1\n    return acc\n");
  // acc is read before any binding: referenced; it IS also bound (by the
  // augassign), so strictly it is a local-used-before-assignment bug.
  // We at least record the reference.
  EXPECT_TRUE(report.referenced.count("acc"));
}

TEST(SelfContained, AcceptsProperParslApp) {
  const char* src = R"(
def process(data, threshold=0.5):
    import numpy as np
    arr = np.asarray(data)
    return [float(v) for v in arr if v > threshold]
)";
  std::set<std::string> offenders;
  EXPECT_TRUE(is_self_contained(parse_module(src), "process", &offenders));
  EXPECT_TRUE(offenders.empty());
}

TEST(SelfContained, RejectsGlobalDependence) {
  const char* src = R"(
MODEL = load_model()

def predict(batch):
    import numpy as np
    return MODEL.run(np.asarray(batch))
)";
  std::set<std::string> offenders;
  EXPECT_FALSE(is_self_contained(parse_module(src), "predict", &offenders));
  EXPECT_TRUE(offenders.count("MODEL"));
}

TEST(SelfContained, HelperFunctionReferenceCaught) {
  const char* src = R"(
def helper(x):
    return x * 2

def target(x):
    return helper(x) + 1
)";
  std::set<std::string> offenders;
  EXPECT_FALSE(is_self_contained(parse_module(src), "target", &offenders));
  EXPECT_TRUE(offenders.count("helper"));
}

TEST(Scope, MissingFunctionThrows) {
  EXPECT_THROW(analyze_function_scope(parse_module("x = 1\n"), "nope"), Error);
}

TEST(Scope, MethodInsideClassFound) {
  const char* src = R"(
class Pipeline:
    def stage(self, data):
        import json
        return json.dumps(data)
)";
  std::set<std::string> offenders;
  EXPECT_TRUE(is_self_contained(parse_module(src), "stage", &offenders)) <<
      [&] { std::string s; for (const auto& o : offenders) s += o + " "; return s; }();
}

}  // namespace
}  // namespace lfm::pysrc
