// Unit tests for version parsing, ordering, and constraint matching.
#include <gtest/gtest.h>

#include "pkg/requirements.h"
#include "pkg/version.h"

namespace lfm::pkg {
namespace {

Version v(const std::string& s) { return Version::parse(s); }

TEST(Version, ParseAndPrint) {
  EXPECT_EQ(v("1.2.3").str(), "1.2.3");
  EXPECT_EQ(v("2020.1").str(), "2020.1");
  EXPECT_EQ(v("1.0rc1").str(), "1.0rc1");
  EXPECT_EQ(v("1.0a2").str(), "1.0a2");
  EXPECT_EQ(v("1.0beta3").str(), "1.0b3");
  EXPECT_EQ(v(" 1.2 ").str(), "1.2");
}

TEST(Version, ParseRejectsMalformed) {
  EXPECT_THROW(v(""), Error);
  EXPECT_THROW(v("abc"), Error);
  EXPECT_THROW(v("1."), Error);
  EXPECT_THROW(v("1.2.3garbage4x"), Error);
  EXPECT_THROW(v("1.0rc1x"), Error);
}

TEST(Version, Ordering) {
  EXPECT_LT(v("1.2"), v("1.10"));       // numeric, not lexicographic
  EXPECT_LT(v("1.2.3"), v("1.2.4"));
  EXPECT_LT(v("1.9"), v("2.0"));
  EXPECT_EQ(v("1.2"), v("1.2.0"));      // implicit zero padding
  EXPECT_EQ(v("1.2.0.0"), v("1.2"));
  EXPECT_GT(v("3.8.5"), v("3.7.9"));
}

TEST(Version, PrereleaseOrdering) {
  EXPECT_LT(v("1.0a1"), v("1.0b1"));
  EXPECT_LT(v("1.0b1"), v("1.0rc1"));
  EXPECT_LT(v("1.0rc1"), v("1.0"));
  EXPECT_LT(v("1.0rc1"), v("1.0rc2"));
  EXPECT_GT(v("1.0"), v("1.0rc9"));
  EXPECT_TRUE(v("1.0rc1").is_prerelease());
  EXPECT_FALSE(v("1.0").is_prerelease());
}

TEST(Version, CompatibleRelease) {
  EXPECT_TRUE(v("1.4.7").compatible_with(v("1.4.2")));
  EXPECT_TRUE(v("1.4.2").compatible_with(v("1.4.2")));
  EXPECT_FALSE(v("1.5.0").compatible_with(v("1.4.2")));
  EXPECT_FALSE(v("1.4.1").compatible_with(v("1.4.2")));  // below base
  EXPECT_TRUE(v("1.9").compatible_with(v("1.4")));       // ~=1.4 allows 1.x
  EXPECT_FALSE(v("2.0").compatible_with(v("1.4")));
}

TEST(Constraint, AllOperators) {
  EXPECT_TRUE((Constraint{ConstraintOp::kEq, v("1.2")}).satisfied_by(v("1.2.0")));
  EXPECT_TRUE((Constraint{ConstraintOp::kNe, v("1.2")}).satisfied_by(v("1.3")));
  EXPECT_TRUE((Constraint{ConstraintOp::kGe, v("1.2")}).satisfied_by(v("1.2")));
  EXPECT_FALSE((Constraint{ConstraintOp::kGt, v("1.2")}).satisfied_by(v("1.2")));
  EXPECT_TRUE((Constraint{ConstraintOp::kLe, v("1.2")}).satisfied_by(v("1.2")));
  EXPECT_FALSE((Constraint{ConstraintOp::kLt, v("1.2")}).satisfied_by(v("1.2")));
  EXPECT_TRUE((Constraint{ConstraintOp::kCompatible, v("1.4.2")}).satisfied_by(v("1.4.9")));
}

TEST(VersionSpec, ParseAndMatch) {
  const auto spec = VersionSpec::parse(">=1.19,<2.0");
  EXPECT_TRUE(spec.matches(v("1.19")));
  EXPECT_TRUE(spec.matches(v("1.25.3")));
  EXPECT_FALSE(spec.matches(v("2.0")));
  EXPECT_FALSE(spec.matches(v("1.18.9")));
}

TEST(VersionSpec, EmptyMatchesEverything) {
  EXPECT_TRUE(VersionSpec::any().matches(v("0.0.1")));
  EXPECT_TRUE(VersionSpec::any().empty());
}

TEST(VersionSpec, BareVersionMeansExact) {
  const auto spec = VersionSpec::parse("1.15.0");
  EXPECT_TRUE(spec.matches(v("1.15")));
  EXPECT_FALSE(spec.matches(v("1.15.1")));
}

TEST(VersionSpec, Intersect) {
  const auto a = VersionSpec::parse(">=1.0");
  const auto b = VersionSpec::parse("<2.0");
  const auto both = a.intersect(b);
  EXPECT_TRUE(both.matches(v("1.5")));
  EXPECT_FALSE(both.matches(v("2.5")));
  EXPECT_FALSE(both.matches(v("0.9")));
}

TEST(VersionSpec, Exactly) {
  const auto spec = VersionSpec::exactly(v("1.19.2"));
  EXPECT_TRUE(spec.matches(v("1.19.2")));
  EXPECT_FALSE(spec.matches(v("1.19.3")));
}

TEST(VersionSpec, RejectsBadConstraint) {
  EXPECT_THROW(VersionSpec::parse("=>1.0"), Error);
  EXPECT_THROW(VersionSpec::parse("banana"), Error);
}

TEST(VersionSpec, Render) {
  EXPECT_EQ(VersionSpec::parse(">=1.19,<2.0").str(), ">=1.19,<2.0");
  EXPECT_EQ(VersionSpec::parse("~=1.4.2").str(), "~=1.4.2");
}

TEST(Requirement, Parse) {
  const auto r1 = Requirement::parse("numpy>=1.19,<2.0");
  EXPECT_EQ(r1.name, "numpy");
  EXPECT_TRUE(r1.spec.matches(v("1.19.5")));

  const auto r2 = Requirement::parse("scikit-learn");
  EXPECT_EQ(r2.name, "scikit-learn");
  EXPECT_TRUE(r2.spec.empty());

  const auto r3 = Requirement::parse("python-dateutil>=2.7");
  EXPECT_EQ(r3.name, "python-dateutil");

  const auto r4 = Requirement::parse("gast==0.3.3");
  EXPECT_TRUE(r4.spec.matches(v("0.3.3")));
  EXPECT_FALSE(r4.spec.matches(v("0.3.4")));
}

TEST(Requirement, ParseRejectsEmpty) {
  EXPECT_THROW(Requirement::parse(""), Error);
  EXPECT_THROW(Requirement::parse(">=1.0"), Error);
}

TEST(Requirement, Render) {
  EXPECT_EQ(Requirement::parse("numpy>=1.19").str(), "numpy>=1.19");
  EXPECT_EQ(Requirement::parse("six").str(), "six");
}


TEST(Requirements, ParseDocument) {
  const char* doc = R"(# pinned environment
numpy==1.19.2
scipy>=1.5,<2.0   # solver input

-r other.txt
pandas
)";
  const auto reqs = pkg::parse_requirements(doc);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].str(), "numpy==1.19.2");
  EXPECT_EQ(reqs[1].name, "scipy");
  EXPECT_TRUE(reqs[1].spec.matches(v("1.5.2")));
  EXPECT_TRUE(reqs[2].spec.empty());
}

TEST(Requirements, RoundTripRender) {
  const auto reqs = pkg::parse_requirements("a==1.0\nb>=2.0,<3.0\nc\n");
  EXPECT_EQ(pkg::render_requirements(reqs), "a==1.0\nb>=2.0,<3.0\nc\n");
}

TEST(Requirements, MalformedLineReportsNumber) {
  try {
    pkg::parse_requirements("good==1.0\n>=2.0\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Requirements, EmptyAndCommentOnlyDocuments) {
  EXPECT_TRUE(pkg::parse_requirements("").empty());
  EXPECT_TRUE(pkg::parse_requirements("# nothing here\n\n").empty());
}

}  // namespace
}  // namespace lfm::pkg
