// Unit tests for the mini-Python parser: statement forms, expression
// precedence, and error handling.
#include <gtest/gtest.h>

#include "pysrc/parser.h"

namespace lfm::pysrc {
namespace {

Module parse(const std::string& src) { return parse_module(src); }

const FunctionDefStmt& as_fn(const StmtPtr& s) {
  EXPECT_EQ(s->kind, StmtKind::kFunctionDef);
  return static_cast<const FunctionDefStmt&>(*s);
}

TEST(Parser, EmptyModule) {
  EXPECT_TRUE(parse("").body.empty());
  EXPECT_TRUE(parse("\n\n# comments\n").body.empty());
}

TEST(Parser, ImportForms) {
  const Module m = parse(
      "import os\n"
      "import numpy as np\n"
      "import os.path, sys\n");
  ASSERT_EQ(m.body.size(), 3u);
  const auto& i1 = static_cast<const ImportStmt&>(*m.body[0]);
  EXPECT_EQ(i1.names[0].name, "os");
  EXPECT_TRUE(i1.names[0].asname.empty());
  const auto& i2 = static_cast<const ImportStmt&>(*m.body[1]);
  EXPECT_EQ(i2.names[0].name, "numpy");
  EXPECT_EQ(i2.names[0].asname, "np");
  const auto& i3 = static_cast<const ImportStmt&>(*m.body[2]);
  ASSERT_EQ(i3.names.size(), 2u);
  EXPECT_EQ(i3.names[0].name, "os.path");
  EXPECT_EQ(i3.names[1].name, "sys");
}

TEST(Parser, ImportFromForms) {
  const Module m = parse(
      "from os import path\n"
      "from numpy import array as arr, zeros\n"
      "from . import sibling\n"
      "from ..pkg import mod\n"
      "from typing import *\n"
      "from collections import (\n    OrderedDict,\n    defaultdict,\n)\n");
  ASSERT_EQ(m.body.size(), 6u);
  const auto& f1 = static_cast<const ImportFromStmt&>(*m.body[0]);
  EXPECT_EQ(f1.module, "os");
  EXPECT_EQ(f1.names[0].name, "path");
  const auto& f2 = static_cast<const ImportFromStmt&>(*m.body[1]);
  EXPECT_EQ(f2.names[0].asname, "arr");
  EXPECT_EQ(f2.names[1].name, "zeros");
  const auto& f3 = static_cast<const ImportFromStmt&>(*m.body[2]);
  EXPECT_EQ(f3.level, 1);
  EXPECT_TRUE(f3.module.empty());
  const auto& f4 = static_cast<const ImportFromStmt&>(*m.body[3]);
  EXPECT_EQ(f4.level, 2);
  EXPECT_EQ(f4.module, "pkg");
  const auto& f5 = static_cast<const ImportFromStmt&>(*m.body[4]);
  EXPECT_TRUE(f5.star);
  const auto& f6 = static_cast<const ImportFromStmt&>(*m.body[5]);
  ASSERT_EQ(f6.names.size(), 2u);
  EXPECT_EQ(f6.names[1].name, "defaultdict");
}

TEST(Parser, FunctionDefFull) {
  const Module m = parse(
      "@decorator\n"
      "@mod.attr(arg=1)\n"
      "def f(a, b: int = 2, *args, c, **kwargs) -> str:\n"
      "    return a\n");
  const auto& fn = as_fn(m.body[0]);
  EXPECT_EQ(fn.name, "f");
  EXPECT_EQ(fn.decorators.size(), 2u);
  ASSERT_EQ(fn.params.size(), 5u);
  EXPECT_EQ(fn.params[0].name, "a");
  EXPECT_EQ(fn.params[1].name, "b");
  EXPECT_NE(fn.params[1].annotation, nullptr);
  EXPECT_NE(fn.params[1].default_val, nullptr);
  EXPECT_TRUE(fn.params[2].is_vararg);
  EXPECT_EQ(fn.params[3].name, "c");
  EXPECT_TRUE(fn.params[4].is_kwarg);
  EXPECT_NE(fn.returns, nullptr);
  EXPECT_EQ(fn.body.size(), 1u);
}

TEST(Parser, AsyncDef) {
  const Module m = parse("async def f():\n    await g()\n");
  EXPECT_TRUE(as_fn(m.body[0]).is_async);
}

TEST(Parser, ClassDef) {
  const Module m = parse(
      "class C(Base, metaclass=Meta):\n"
      "    x = 1\n"
      "    def method(self):\n"
      "        pass\n");
  const auto& cls = static_cast<const ClassDefStmt&>(*m.body[0]);
  EXPECT_EQ(cls.name, "C");
  EXPECT_EQ(cls.bases.size(), 1u);
  EXPECT_EQ(cls.keywords.size(), 1u);
  EXPECT_EQ(cls.body.size(), 2u);
}

TEST(Parser, IfElifElse) {
  const Module m = parse(
      "if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
  const auto& i = static_cast<const IfStmt&>(*m.body[0]);
  EXPECT_EQ(i.body.size(), 1u);
  ASSERT_EQ(i.orelse.size(), 1u);
  const auto& elif = static_cast<const IfStmt&>(*i.orelse[0]);
  EXPECT_EQ(elif.orelse.size(), 1u);  // final else
}

TEST(Parser, LoopsWithElse) {
  const Module m = parse(
      "for i in range(10):\n    pass\nelse:\n    done()\n"
      "while cond:\n    break\n");
  const auto& f = static_cast<const ForStmt&>(*m.body[0]);
  EXPECT_EQ(f.orelse.size(), 1u);
  const auto& w = static_cast<const WhileStmt&>(*m.body[1]);
  EXPECT_EQ(w.body.size(), 1u);
  EXPECT_EQ(w.body[0]->kind, StmtKind::kBreak);
}

TEST(Parser, ForTupleTarget) {
  const Module m = parse("for k, v in items:\n    pass\n");
  const auto& f = static_cast<const ForStmt&>(*m.body[0]);
  EXPECT_EQ(f.target->kind, ExprKind::kTuple);
}

TEST(Parser, TryExceptFinally) {
  const Module m = parse(
      "try:\n    risky()\n"
      "except ImportError as e:\n    handle(e)\n"
      "except (TypeError, ValueError):\n    pass\n"
      "except:\n    pass\n"
      "else:\n    ok()\n"
      "finally:\n    cleanup()\n");
  const auto& t = static_cast<const TryStmt&>(*m.body[0]);
  ASSERT_EQ(t.handlers.size(), 3u);
  EXPECT_EQ(t.handlers[0].name, "e");
  EXPECT_EQ(t.handlers[1].type->kind, ExprKind::kTuple);
  EXPECT_EQ(t.handlers[2].type, nullptr);
  EXPECT_EQ(t.orelse.size(), 1u);
  EXPECT_EQ(t.finally.size(), 1u);
}

TEST(Parser, TryWithoutHandlersThrows) {
  EXPECT_THROW(parse("try:\n    pass\n"), SyntaxError);
}

TEST(Parser, WithStatement) {
  const Module m = parse("with open(f) as fh, lock:\n    pass\n");
  const auto& w = static_cast<const WithStmt&>(*m.body[0]);
  ASSERT_EQ(w.items.size(), 2u);
  EXPECT_NE(w.items[0].target, nullptr);
  EXPECT_EQ(w.items[1].target, nullptr);
}

TEST(Parser, Assignments) {
  const Module m = parse(
      "x = 1\n"
      "a = b = 2\n"
      "x += 3\n"
      "y: int = 4\n"
      "z: str\n"
      "p, q = 1, 2\n");
  EXPECT_EQ(m.body[0]->kind, StmtKind::kAssign);
  const auto& chain = static_cast<const AssignStmt&>(*m.body[1]);
  EXPECT_EQ(chain.targets.size(), 2u);
  const auto& aug = static_cast<const AugAssignStmt&>(*m.body[2]);
  EXPECT_EQ(aug.op, "+=");
  EXPECT_EQ(m.body[3]->kind, StmtKind::kAnnAssign);
  const auto& bare_ann = static_cast<const AnnAssignStmt&>(*m.body[4]);
  EXPECT_EQ(bare_ann.value, nullptr);
  const auto& unpack = static_cast<const AssignStmt&>(*m.body[5]);
  EXPECT_EQ(unpack.targets[0]->kind, ExprKind::kTuple);
}

TEST(Parser, SimpleStatements) {
  const Module m = parse(
      "pass\nbreak\ncontinue\nreturn\nraise\nraise E from cause\n"
      "assert x, 'msg'\nglobal g1, g2\nnonlocal n\ndel a, b\n");
  EXPECT_EQ(m.body[0]->kind, StmtKind::kPass);
  EXPECT_EQ(m.body[1]->kind, StmtKind::kBreak);
  EXPECT_EQ(m.body[2]->kind, StmtKind::kContinue);
  EXPECT_EQ(m.body[3]->kind, StmtKind::kReturn);
  EXPECT_EQ(m.body[4]->kind, StmtKind::kRaise);
  const auto& r = static_cast<const RaiseStmt&>(*m.body[5]);
  EXPECT_NE(r.cause, nullptr);
  const auto& a = static_cast<const AssertStmt&>(*m.body[6]);
  EXPECT_NE(a.message, nullptr);
  const auto& g = static_cast<const ScopeDeclStmt&>(*m.body[7]);
  EXPECT_EQ(g.names.size(), 2u);
  EXPECT_EQ(m.body[8]->kind, StmtKind::kNonlocal);
  const auto& d = static_cast<const DeleteStmt&>(*m.body[9]);
  EXPECT_EQ(d.targets.size(), 2u);
}

// --- expressions -----------------------------------------------------------

const Expr& single_expr(const Module& m) {
  EXPECT_EQ(m.body[0]->kind, StmtKind::kExpr);
  return *static_cast<const ExprStmt&>(*m.body[0]).value;
}

TEST(Parser, ArithmeticPrecedence) {
  const Module m = parse("1 + 2 * 3\n");
  const auto& e = static_cast<const BinOpExpr&>(single_expr(m));
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(static_cast<const BinOpExpr&>(*e.rhs).op, "*");
}

TEST(Parser, PowerRightAssociative) {
  const Module m = parse("2 ** 3 ** 2\n");
  const auto& e = static_cast<const BinOpExpr&>(single_expr(m));
  EXPECT_EQ(e.op, "**");
  EXPECT_EQ(e.rhs->kind, ExprKind::kBinOp);
}

TEST(Parser, ComparisonChain) {
  const Module m = parse("a < b <= c\n");
  const auto& e = static_cast<const CompareExpr&>(single_expr(m));
  ASSERT_EQ(e.rest.size(), 2u);
  EXPECT_EQ(e.rest[0].first, "<");
  EXPECT_EQ(e.rest[1].first, "<=");
}

TEST(Parser, MembershipAndIdentity) {
  const Module m = parse("a not in b is not c\n");
  const auto& e = static_cast<const CompareExpr&>(single_expr(m));
  EXPECT_EQ(e.rest[0].first, "not in");
  EXPECT_EQ(e.rest[1].first, "is not");
}

TEST(Parser, BoolOpsCollapse) {
  const Module m = parse("a or b or c and d\n");
  const auto& e = static_cast<const BoolOpExpr&>(single_expr(m));
  EXPECT_EQ(e.op, "or");
  EXPECT_EQ(e.values.size(), 3u);
  EXPECT_EQ(e.values[2]->kind, ExprKind::kBoolOp);  // and-group
}

TEST(Parser, Ternary) {
  const Module m = parse("a if cond else b\n");
  EXPECT_EQ(single_expr(m).kind, ExprKind::kConditional);
}

TEST(Parser, Lambda) {
  const Module m = parse("lambda x, y=1: x + y\n");
  const auto& l = static_cast<const LambdaExpr&>(single_expr(m));
  EXPECT_EQ(l.params.size(), 2u);
  EXPECT_NE(l.body, nullptr);
}

TEST(Parser, CallForms) {
  const Module m = parse("f(1, x, *rest, key=2, **kw)\n");
  const auto& c = static_cast<const CallExpr&>(single_expr(m));
  EXPECT_EQ(c.args.size(), 3u);
  EXPECT_EQ(c.args[2]->kind, ExprKind::kStarred);
  ASSERT_EQ(c.keywords.size(), 2u);
  EXPECT_EQ(c.keywords[0].name, "key");
  EXPECT_TRUE(c.keywords[1].name.empty());
}

TEST(Parser, AttributeAndSubscriptChains) {
  const Module m = parse("a.b.c[0][1:2].d(x)\n");
  const auto& call = static_cast<const CallExpr&>(single_expr(m));
  EXPECT_EQ(call.func->kind, ExprKind::kAttribute);
}

TEST(Parser, SliceForms) {
  const Module m = parse("a[1:2:3]\n");
  const auto& s = static_cast<const SubscriptExpr&>(single_expr(m));
  const auto& sl = static_cast<const SliceExpr&>(*s.index);
  EXPECT_NE(sl.lower, nullptr);
  EXPECT_NE(sl.upper, nullptr);
  EXPECT_NE(sl.step, nullptr);

  const Module m2 = parse("a[:]\n");
  const auto& s2 = static_cast<const SubscriptExpr&>(single_expr(m2));
  const auto& sl2 = static_cast<const SliceExpr&>(*s2.index);
  EXPECT_EQ(sl2.lower, nullptr);
  EXPECT_EQ(sl2.upper, nullptr);
}

TEST(Parser, Displays) {
  EXPECT_EQ(single_expr(parse("[1, 2, 3]\n")).kind, ExprKind::kList);
  EXPECT_EQ(single_expr(parse("(1, 2)\n")).kind, ExprKind::kTuple);
  EXPECT_EQ(single_expr(parse("{1, 2}\n")).kind, ExprKind::kSet);
  EXPECT_EQ(single_expr(parse("{'a': 1}\n")).kind, ExprKind::kDict);
  EXPECT_EQ(single_expr(parse("{}\n")).kind, ExprKind::kDict);
  EXPECT_EQ(single_expr(parse("()\n")).kind, ExprKind::kTuple);
}

TEST(Parser, DictWithExpansion) {
  const Module m = parse("{'a': 1, **extra}\n");
  const auto& d = static_cast<const DictExpr&>(single_expr(m));
  ASSERT_EQ(d.items.size(), 2u);
  EXPECT_EQ(d.items[1].first, nullptr);
}

TEST(Parser, Comprehensions) {
  EXPECT_EQ(single_expr(parse("[x for x in y if x > 0]\n")).kind,
            ExprKind::kComprehension);
  const auto& c = static_cast<const ComprehensionExpr&>(
      single_expr(parse("{k: v for k, v in items}\n")));
  EXPECT_EQ(c.comp_type, "dict");
  EXPECT_NE(c.value, nullptr);
  const auto& g = static_cast<const ComprehensionExpr&>(
      single_expr(parse("sum(x*x for x in xs)\n")));
  (void)g;
  const auto& nested = static_cast<const ComprehensionExpr&>(
      single_expr(parse("[i*j for i in a for j in b]\n")));
  EXPECT_EQ(nested.clauses.size(), 2u);
}

TEST(Parser, GeneratorArgument) {
  const Module m = parse("any(v > 0 for v in vals)\n");
  const auto& call = static_cast<const CallExpr&>(single_expr(m));
  ASSERT_EQ(call.args.size(), 1u);
  EXPECT_EQ(call.args[0]->kind, ExprKind::kComprehension);
}

TEST(Parser, StringConcatenation) {
  const Module m = parse("'a' 'b' 'c'\n");
  const auto& c = static_cast<const ConstantExpr&>(single_expr(m));
  EXPECT_EQ(c.text, "abc");
}

TEST(Parser, Constants) {
  EXPECT_EQ(static_cast<const ConstantExpr&>(single_expr(parse("None\n"))).const_kind,
            ConstantKind::kNone);
  EXPECT_EQ(static_cast<const ConstantExpr&>(single_expr(parse("True\n"))).bool_value,
            true);
  EXPECT_EQ(static_cast<const ConstantExpr&>(single_expr(parse("...\n"))).const_kind,
            ConstantKind::kEllipsis);
  EXPECT_EQ(static_cast<const ConstantExpr&>(single_expr(parse("0x1F\n"))).const_kind,
            ConstantKind::kInt);
  EXPECT_EQ(static_cast<const ConstantExpr&>(single_expr(parse("1.5e3\n"))).const_kind,
            ConstantKind::kFloat);
}

TEST(Parser, WalrusInCondition) {
  // := parses as an operator token; we accept it in expressions.
  EXPECT_NO_THROW(parse("while (n := next(it)) > 0:\n    pass\n"));
}

TEST(Parser, SingleLineSuite) {
  const Module m = parse("if x: y = 1\n");
  const auto& i = static_cast<const IfStmt&>(*m.body[0]);
  EXPECT_EQ(i.body.size(), 1u);
}

TEST(Parser, ParseExpressionEntryPoint) {
  const ExprPtr e = parse_expression("1 + 2");
  EXPECT_EQ(e->kind, ExprKind::kBinOp);
  EXPECT_THROW(parse_expression("1 +"), SyntaxError);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(parse("def f(:\n    pass\n"), SyntaxError);
  EXPECT_THROW(parse("import\n"), SyntaxError);
  EXPECT_THROW(parse("from import x\n"), SyntaxError);
  EXPECT_THROW(parse("x = = 2\n"), SyntaxError);
  EXPECT_THROW(parse("if x\n    pass\n"), SyntaxError);
  EXPECT_THROW(parse("def f():\n"), SyntaxError);  // missing body
}

TEST(Parser, LineNumbersOnStatements) {
  const Module m = parse("x = 1\n\n\ny = 2\n");
  EXPECT_EQ(m.body[0]->line, 1);
  EXPECT_EQ(m.body[1]->line, 4);
}

TEST(Parser, RealisticParslSnippet) {
  const char* src = R"(
import parsl
from parsl import python_app

@python_app
def process(data, threshold=0.5):
    import numpy as np
    from sklearn.cluster import KMeans
    arr = np.asarray(data)
    model = KMeans(n_clusters=2)
    labels = model.fit_predict(arr.reshape(-1, 1))
    return [int(l) for l in labels if l >= threshold]

futures = [process(chunk) for chunk in chunks]
results = [f.result() for f in futures]
)";
  const Module m = parse(src);
  EXPECT_EQ(m.body.size(), 5u);
  const auto& fn = as_fn(m.body[2]);
  EXPECT_EQ(fn.name, "process");
  EXPECT_EQ(fn.decorators.size(), 1u);
}

}  // namespace
}  // namespace lfm::pysrc
