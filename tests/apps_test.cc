// Tests for the four workload modules: generator shapes (paper §VI.C
// parameters) and the real compute kernels.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/drugscreen.h"
#include "apps/genomics.h"
#include "apps/hep.h"
#include "apps/imageclass.h"

namespace lfm::apps {
namespace {

// --- HEP ----------------------------------------------------------------------

TEST(HepWorkload, MatchesPaperParameters) {
  hep::Params params;
  params.tasks = 50;
  const auto tasks = hep::generate(params);
  ASSERT_EQ(tasks.size(), 50u);
  for (const auto& t : tasks) {
    EXPECT_GE(t.exec_seconds, 40.0);
    EXPECT_LE(t.exec_seconds, 70.0);
    EXPECT_LE(t.true_peak.memory_bytes, 110e6);   // Oracle bound
    EXPECT_LE(t.true_peak.disk_bytes, 1000e6 + 1);
    EXPECT_DOUBLE_EQ(t.true_cores, 1.0);
    // Largest input is the 240 MB conda environment, cacheable.
    const auto& env = t.inputs[0];
    EXPECT_EQ(env.size_bytes, 240LL * 1000 * 1000);
    EXPECT_TRUE(env.cacheable);
    // Unique per-task data present.
    bool has_unique = false;
    for (const auto& in : t.inputs) {
      if (!in.cacheable) has_unique = true;
    }
    EXPECT_TRUE(has_unique);
    EXPECT_EQ(t.output_bytes, 50LL * 1000 * 1000);
  }
}

TEST(HepWorkload, DeterministicForSeed) {
  hep::Params params;
  params.tasks = 10;
  const auto a = hep::generate(params);
  const auto b = hep::generate(params);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].exec_seconds, b[i].exec_seconds);
    EXPECT_DOUBLE_EQ(a[i].true_peak.memory_bytes, b[i].true_peak.memory_bytes);
  }
}

TEST(HepKernel, HistogramConservesEvents) {
  const auto result = hep::analyze_column_batch(10000, 50, 0.0, 200.0, 42);
  const auto& hist = result.at("histogram").as_list();
  ASSERT_EQ(hist.size(), 50u);
  int64_t total = 0;
  for (const auto& bin : hist) total += bin.as_int();
  EXPECT_LE(total, 10000);        // out-of-range events fall outside
  EXPECT_GT(total, 9000);         // but most land in range
  EXPECT_EQ(result.at("events").as_int(), 10000);
  EXPECT_GT(result.at("mean").as_real(), 0.0);
}

TEST(HepKernel, ResonancePeakVisible) {
  // The synthetic spectrum has a resonance near 55% of the range; the bin
  // there should beat its neighbours well away from the bulk.
  const auto result = hep::analyze_column_batch(200000, 100, 0.0, 100.0, 7);
  const auto& hist = result.at("histogram").as_list();
  const int64_t peak_region = hist[55].as_int() + hist[54].as_int() + hist[56].as_int();
  const int64_t control = hist[80].as_int() + hist[81].as_int() + hist[82].as_int();
  EXPECT_GT(peak_region, control * 3);
}

TEST(HepKernel, RejectsBadParameters) {
  EXPECT_THROW(hep::analyze_column_batch(0, 10, 0, 1, 1), Error);
  EXPECT_THROW(hep::analyze_column_batch(10, 0, 0, 1, 1), Error);
  EXPECT_THROW(hep::analyze_column_batch(10, 10, 5, 1, 1), Error);
}

TEST(HepKernel, TaskAdapter) {
  serde::ValueDict args;
  args["events"] = serde::Value(100);
  args["bins"] = serde::Value(10);
  args["lo"] = serde::Value(0.0);
  args["hi"] = serde::Value(50.0);
  args["seed"] = serde::Value(1);
  const auto result = hep::analysis_task(serde::Value(std::move(args)));
  EXPECT_EQ(result.at("events").as_int(), 100);
}

// --- Drug screening -------------------------------------------------------------

TEST(DrugWorkload, StageStructure) {
  drugscreen::Params params;
  params.molecules = 10;
  const auto tasks = drugscreen::generate(params);
  EXPECT_EQ(tasks.size(), 60u);  // 6 stages per molecule batch
  // Inference stages demand far more memory than featurizers.
  double max_feat_mem = 0.0, min_inf_mem = 1e18;
  for (const auto& t : tasks) {
    if (t.category == "fingerprint") {
      max_feat_mem = std::max(max_feat_mem, t.true_peak.memory_bytes);
    }
    if (t.category == "tf-inference-a") {
      min_inf_mem = std::min(min_inf_mem, t.true_peak.memory_bytes);
    }
  }
  EXPECT_GT(min_inf_mem, max_feat_mem);
}

TEST(DrugWorkload, GuessMatchesPaper) {
  const auto g = drugscreen::guess_allocation();
  EXPECT_DOUBLE_EQ(g.cores, 16.0);
  EXPECT_DOUBLE_EQ(g.memory_bytes, 40e9);
  EXPECT_DOUBLE_EQ(g.disk_bytes, 5e9);
}

TEST(SmilesKernel, CanonicalizationIdempotent) {
  for (const char* smiles :
       {"CCO", "c1ccccc1", "CC(C)C.O", "C1CC1CN", "N(C)(C)C"}) {
    const std::string once = drugscreen::canonicalize_smiles(smiles);
    EXPECT_EQ(drugscreen::canonicalize_smiles(once), once) << smiles;
  }
}

TEST(SmilesKernel, ComponentOrderNormalized) {
  EXPECT_EQ(drugscreen::canonicalize_smiles("O.CC"),
            drugscreen::canonicalize_smiles("CC.O"));
}

TEST(SmilesKernel, AromaticNormalization) {
  EXPECT_EQ(drugscreen::canonicalize_smiles("c1ccccc1"),
            drugscreen::canonicalize_smiles("C1CCCCC1"));
}

TEST(SmilesKernel, RingRenumbering) {
  // Ring-closure digits renumber by first use: %2 first becomes 1.
  const std::string canon = drugscreen::canonicalize_smiles("C2CC2");
  EXPECT_EQ(canon, "C1CC1");
}

TEST(FingerprintKernel, DeterministicAndBounded) {
  const auto bits = drugscreen::fingerprint("CCO");
  EXPECT_FALSE(bits.empty());
  EXPECT_TRUE(std::is_sorted(bits.begin(), bits.end()));
  for (const int b : bits) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 2048);
  }
  EXPECT_EQ(drugscreen::fingerprint("CCO"), bits);
}

TEST(FingerprintKernel, DifferentMoleculesDiffer) {
  EXPECT_NE(drugscreen::fingerprint("CCO"), drugscreen::fingerprint("CCCCCCN"));
}

TEST(FingerprintKernel, RejectsBadBits) {
  EXPECT_THROW(drugscreen::fingerprint("CCO", 0), Error);
}

TEST(DescriptorKernel, CountsAtoms) {
  const auto d = drugscreen::descriptor("CCN(C)O");
  EXPECT_EQ(d.at("carbons").as_int(), 3);
  EXPECT_EQ(d.at("nitrogens").as_int(), 1);
  EXPECT_EQ(d.at("oxygens").as_int(), 1);
  EXPECT_EQ(d.at("branches").as_int(), 1);
}

TEST(DescriptorKernel, CountsRings) {
  const auto d = drugscreen::descriptor(drugscreen::canonicalize_smiles("C1CC1C2CC2"));
  EXPECT_EQ(d.at("rings").as_int(), 2);
}

TEST(DockingModel, ScoresInRangeAndDeterministic) {
  const auto bits = drugscreen::fingerprint("CCOC1CC1N");
  const double a = drugscreen::predict_docking_score(bits, 1);
  const double b = drugscreen::predict_docking_score(bits, 1);
  const double other_model = drugscreen::predict_docking_score(bits, 2);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  EXPECT_NE(a, other_model);
}

TEST(DrugKernels, TaskAdaptersEndToEnd) {
  serde::ValueDict args;
  args["smiles"] = serde::Value("c1ccccc1CCO");
  const auto canon = drugscreen::canonicalize_task(serde::Value(args));
  EXPECT_FALSE(canon.as_str().empty());
  const auto feats = drugscreen::featurize_task(serde::Value(args));
  EXPECT_TRUE(feats.contains("descriptor"));
  EXPECT_TRUE(feats.contains("fingerprint"));
  args["model_seed"] = serde::Value(7);
  const auto pred = drugscreen::inference_task(serde::Value(args));
  EXPECT_TRUE(pred.contains("docking_score"));
}

TEST(DrugKernels, RandomSmilesParsesBack) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::string s = drugscreen::random_smiles(seed, 12);
    EXPECT_FALSE(s.empty());
    // Canonicalizer must accept every generated molecule.
    EXPECT_NO_THROW(drugscreen::canonicalize_smiles(s));
  }
}

// --- Genomics -------------------------------------------------------------------

TEST(GenomicsWorkload, VepMemoryVariesAcrossGenomes) {
  genomics::Params params;
  params.genomes = 12;
  const auto tasks = genomics::generate(params);
  std::vector<double> vep_mem;
  for (const auto& t : tasks) {
    if (t.category == "vep-annotate") vep_mem.push_back(t.true_peak.memory_bytes);
  }
  ASSERT_EQ(vep_mem.size(), 12u);
  const double mx = *std::max_element(vep_mem.begin(), vep_mem.end());
  const double mn = *std::min_element(vep_mem.begin(), vep_mem.end());
  EXPECT_GT(mx / mn, 1.5);  // long-tailed: static config cannot capture it
}

TEST(GenomicsWorkload, PipelineStagesPresent) {
  genomics::Params params;
  params.genomes = 2;
  const auto tasks = genomics::generate(params);
  std::set<std::string> cats;
  for (const auto& t : tasks) cats.insert(t.category);
  EXPECT_EQ(cats, (std::set<std::string>{"align", "co-clean", "variant-call",
                                         "vep-annotate", "aggregate"}));
}

TEST(GenomicsKernel, ReferenceDeterministic) {
  EXPECT_EQ(genomics::make_reference(500, 1), genomics::make_reference(500, 1));
  EXPECT_NE(genomics::make_reference(500, 1), genomics::make_reference(500, 2));
  EXPECT_THROW(genomics::make_reference(0, 1), Error);
}

TEST(GenomicsKernel, AlignmentRecoversPositions) {
  const std::string ref = genomics::make_reference(5000, 11);
  const auto rs = genomics::sample_reads(ref, 100, 80, 0.005, 0.0, 13);
  const auto positions = genomics::align_reads(ref, rs.reads);
  ASSERT_EQ(positions.size(), rs.reads.size());
  int correct = 0;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] == rs.read_positions[i]) ++correct;
  }
  // Low error rate: the vast majority must map to the true origin.
  EXPECT_GT(correct, 90);
}

TEST(GenomicsKernel, VariantCallerFindsPlantedSnps) {
  const std::string ref = genomics::make_reference(2000, 21);
  const auto rs = genomics::sample_reads(ref, 600, 100, 0.002, 0.01, 22);
  ASSERT_FALSE(rs.variant_positions.empty());
  const auto positions = genomics::align_reads(ref, rs.reads);
  const auto calls = genomics::call_variants(ref, rs.reads, positions);
  // Most planted variants with coverage should be recovered.
  int recovered = 0;
  for (const auto& call : calls) {
    if (std::find(rs.variant_positions.begin(), rs.variant_positions.end(),
                  call.position) != rs.variant_positions.end()) {
      ++recovered;
    }
  }
  EXPECT_GT(recovered, static_cast<int>(rs.variant_positions.size()) / 2);
  // And few false positives relative to calls made.
  EXPECT_GT(recovered * 2, static_cast<int>(calls.size()));
}

TEST(GenomicsKernel, NoVariantsNoCalls) {
  const std::string ref = genomics::make_reference(2000, 31);
  const auto rs = genomics::sample_reads(ref, 400, 100, 0.0, 0.0, 32);
  const auto positions = genomics::align_reads(ref, rs.reads);
  const auto calls = genomics::call_variants(ref, rs.reads, positions);
  EXPECT_TRUE(calls.empty());
}

TEST(GenomicsKernel, PipelineTaskAdapter) {
  serde::ValueDict args;
  args["ref_len"] = serde::Value(2000);
  args["reads"] = serde::Value(200);
  args["read_len"] = serde::Value(80);
  args["seed"] = serde::Value(5);
  const auto result = genomics::pipeline_task(serde::Value(std::move(args)));
  EXPECT_GT(result.at("mapped").as_int(), 150);
  EXPECT_TRUE(result.contains("annotations"));
  EXPECT_GE(result.at("variants").as_int(), 0);
}

// --- Image classification ---------------------------------------------------------

TEST(ImageWorkload, UniformFaasShape) {
  imageclass::Params params;
  params.tasks = 30;
  const auto tasks = imageclass::generate(params);
  ASSERT_EQ(tasks.size(), 30u);
  for (const auto& t : tasks) {
    EXPECT_EQ(t.category, "resnet-classify");
    EXPECT_LE(t.true_peak.memory_bytes, 3.6e9);
    EXPECT_GE(t.true_peak.memory_bytes, 1.4e9);
  }
}

TEST(ImageKernel, SyntheticImageInRange) {
  const auto img = imageclass::synthetic_image(16, 3);
  ASSERT_EQ(img.size(), 256u);
  for (const double v : img) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  EXPECT_THROW(imageclass::synthetic_image(0, 1), Error);
}

TEST(ImageKernel, SoftmaxSumsToOne) {
  const auto img = imageclass::synthetic_image(16, 3);
  const auto probs = imageclass::classify(img, 16, 99);
  ASSERT_EQ(probs.size(), 10u);
  double sum = 0.0;
  for (const double p : probs) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ImageKernel, DeterministicPerSeeds) {
  const auto img = imageclass::synthetic_image(16, 3);
  EXPECT_EQ(imageclass::classify(img, 16, 1), imageclass::classify(img, 16, 1));
  EXPECT_NE(imageclass::classify(img, 16, 1), imageclass::classify(img, 16, 2));
}

TEST(ImageKernel, RejectsSizeMismatch) {
  const auto img = imageclass::synthetic_image(16, 3);
  EXPECT_THROW(imageclass::classify(img, 8, 1), Error);
}

TEST(ImageKernel, TaskAdapter) {
  serde::ValueDict args;
  args["size"] = serde::Value(16);
  args["seed"] = serde::Value(4);
  args["model_seed"] = serde::Value(5);
  const auto result = imageclass::classify_task(serde::Value(std::move(args)));
  EXPECT_GE(result.at("label").as_int(), 0);
  EXPECT_LT(result.at("label").as_int(), 10);
  EXPECT_GT(result.at("confidence").as_real(), 0.0);
}

}  // namespace
}  // namespace lfm::apps
