// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine.h"

namespace lfm::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Engine, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Engine, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, HandlersScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Engine, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule(1.0, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterRunIsNoop) {
  Simulation sim;
  const EventId id = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_NO_THROW(sim.cancel(id));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Engine, RunUntilExecutesEventsAtDeadline) {
  Simulation sim;
  bool ran = false;
  sim.schedule(2.0, [&] { ran = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(ran);
}

TEST(Engine, RejectsNegativeDelay) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), Error);
  EXPECT_THROW(sim.schedule(std::nan(""), [] {}), Error);
}

TEST(Engine, RejectsSchedulingIntoPast) {
  Simulation sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), Error);
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Simulation sim;
  double when = -1.0;
  sim.schedule(1.0, [&] {
    sim.schedule(0.0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 1.0);
}

TEST(Engine, ExecutedEventCount) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule(1.0, [] {});
  const EventId id = sim.schedule(2.0, [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Engine, ManyEventsStress) {
  Simulation sim;
  int64_t sum = 0;
  for (int i = 0; i < 100000; ++i) {
    sim.schedule(static_cast<double>(i % 1000), [&sum] { ++sum; });
  }
  sim.run();
  EXPECT_EQ(sum, 100000);
}

TEST(Engine, CancelAfterExecutionKeepsPendingCountExact) {
  // Regression: cancelling an already-executed event used to leave a
  // permanent entry in the cancelled set, so pending_events()
  // (queue size minus cancelled size) underflowed and wrapped.
  Simulation sim;
  const EventId id = sim.schedule(1.0, [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.cancel(id);  // already ran: must be a no-op
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule(1.0, [] {});
  EXPECT_EQ(sim.pending_events(), 1u);  // not SIZE_MAX
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Engine, CancelNeverIssuedOrRepeatedIsNoop) {
  Simulation sim;
  sim.cancel(0);        // the null id
  sim.cancel(123456);   // never issued
  EXPECT_EQ(sim.pending_events(), 0u);
  const EventId id = sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  sim.cancel(id);
  sim.cancel(id);  // double cancel counts once
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Engine, CancelFromInsideHandler) {
  Simulation sim;
  bool second_ran = false;
  const EventId second = sim.schedule(2.0, [&] { second_ran = true; });
  sim.schedule(1.0, [&] { sim.cancel(second); });
  sim.run();
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Engine, TombstoneChurnStress) {
  // Heavy schedule/cancel churn (the Network's reschedule-all pattern):
  // tombstoned heap entries must neither execute nor distort the counters.
  Simulation sim;
  int64_t fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 50000; ++i) {
    ids.push_back(sim.schedule(static_cast<double>(i % 100), [&fired] { ++fired; }));
  }
  for (size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  EXPECT_EQ(sim.pending_events(), 25000u);
  sim.run();
  EXPECT_EQ(fired, 25000);
  EXPECT_EQ(sim.executed_events(), 25000u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Engine, RunUntilSkipsCancelledWithoutAdvancingClock) {
  Simulation sim;
  const EventId id = sim.schedule(1.0, [] {});
  sim.schedule(5.0, [] {});
  sim.cancel(id);
  sim.run_until(2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.executed_events(), 0u);
  EXPECT_EQ(sim.pending_events(), 1u);
}

}  // namespace
}  // namespace lfm::sim
