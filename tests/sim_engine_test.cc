// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine.h"

namespace lfm::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Engine, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Engine, SameTimeEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, HandlersScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Engine, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.schedule(1.0, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterRunIsNoop) {
  Simulation sim;
  const EventId id = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_NO_THROW(sim.cancel(id));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Engine, RunUntilExecutesEventsAtDeadline) {
  Simulation sim;
  bool ran = false;
  sim.schedule(2.0, [&] { ran = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(ran);
}

TEST(Engine, RejectsNegativeDelay) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), Error);
  EXPECT_THROW(sim.schedule(std::nan(""), [] {}), Error);
}

TEST(Engine, RejectsSchedulingIntoPast) {
  Simulation sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), Error);
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Simulation sim;
  double when = -1.0;
  sim.schedule(1.0, [&] {
    sim.schedule(0.0, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 1.0);
}

TEST(Engine, ExecutedEventCount) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule(1.0, [] {});
  const EventId id = sim.schedule(2.0, [] {});
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Engine, ManyEventsStress) {
  Simulation sim;
  int64_t sum = 0;
  for (int i = 0; i < 100000; ++i) {
    sim.schedule(static_cast<double>(i % 1000), [&sum] { ++sum; });
  }
  sim.run();
  EXPECT_EQ(sum, 100000);
}

}  // namespace
}  // namespace lfm::sim
