// Analyzer edge cases the content-addressed plan cache must key correctly:
// dynamic imports, star imports, ImportError-guarded fallbacks. For each
// shape the cached and uncached pipelines must agree byte-for-byte, on every
// repeat — a cache entry that dropped diagnostics or import flags would make
// the second submission of a function see a different analysis than the
// first.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "flow/plan.h"
#include "pkg/index.h"
#include "pysrc/imports.h"
#include "pysrc/parser.h"

namespace lfm {
namespace {

const pkg::PackageIndex& index() { return pkg::standard_index(); }

std::string plan_fingerprint(const flow::DependencyPlan& plan) {
  std::ostringstream out;
  for (const auto& name : plan.import_names) out << name << ';';
  out << '|';
  for (const auto& req : plan.requirements) out << req.str() << ';';
  out << '|';
  for (const auto& d : plan.diagnostics) {
    out << static_cast<int>(d.severity) << ':' << d.line << ':' << d.message << ';';
  }
  return out.str();
}

// The core contract: cached and uncached agree on the first call and on
// every repeat.
void expect_stable_function_plan(const std::string& src, const std::string& fn) {
  const auto cold = flow::plan_function_dependencies_uncached(src, fn, index());
  for (int i = 0; i < 3; ++i) {
    const auto warm = flow::plan_function_dependencies(src, fn, index());
    EXPECT_EQ(plan_fingerprint(warm), plan_fingerprint(cold))
        << "repeat scan " << i << " of " << fn << " diverged";
  }
  EXPECT_EQ(plan_fingerprint(flow::plan_function_dependencies_uncached(src, fn, index())),
            plan_fingerprint(cold))
      << "uncached pipeline is itself nondeterministic";
}

TEST(AnalyzerEdge, DunderImportIsRecordedAndWarned) {
  const std::string src = R"(
def f(x):
    numpy = __import__("numpy")
    return numpy.asarray(x)
)";
  const auto scan = pysrc::scan_function(pysrc::parse_module(src), "f");
  bool dynamic_numpy = false;
  for (const auto& rec : scan.imports) {
    if (rec.top_level() == "numpy" && rec.dynamic) dynamic_numpy = true;
  }
  EXPECT_TRUE(dynamic_numpy) << "__import__ with a literal name must be resolved";

  const auto plan = flow::plan_function_dependencies(src, "f", index());
  bool pinned = false;
  for (const auto& req : plan.requirements) {
    if (req.name == "numpy") pinned = true;
  }
  EXPECT_TRUE(pinned);
  expect_stable_function_plan(src, "f");
}

TEST(AnalyzerEdge, ImportlibImportModuleIsRecorded) {
  const std::string src = R"(
def g(x):
    import importlib
    scipy = importlib.import_module("scipy")
    return scipy.optimize(x)
)";
  const auto plan = flow::plan_function_dependencies(src, "g", index());
  EXPECT_TRUE(plan.import_names.count("scipy"));
  expect_stable_function_plan(src, "g");
}

TEST(AnalyzerEdge, DynamicImportWithNonLiteralNameWarnsEveryTime) {
  const std::string src = R"(
def h(name):
    mod = __import__(name)
    return mod
)";
  const auto first = flow::plan_function_dependencies(src, "h", index());
  bool warned = false;
  for (const auto& d : first.diagnostics) {
    if (d.message.find("cannot be resolved statically") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
  // The warning must survive the cache: a hit that dropped diagnostics would
  // silently hide the unresolvable dependency on the second submission.
  const auto second = flow::plan_function_dependencies(src, "h", index());
  EXPECT_EQ(plan_fingerprint(second), plan_fingerprint(first));
  expect_stable_function_plan(src, "h");
}

TEST(AnalyzerEdge, StarImportPinsModuleAndWarns) {
  const std::string src = R"(
def stats(x):
    from numpy import *
    return mean(x)
)";
  const auto plan = flow::plan_function_dependencies(src, "stats", index());
  EXPECT_TRUE(plan.import_names.count("numpy"));
  bool star_warning = false;
  for (const auto& d : plan.diagnostics) {
    if (d.message.find("star import") != std::string::npos) star_warning = true;
  }
  EXPECT_TRUE(star_warning);
  expect_stable_function_plan(src, "stats");
}

TEST(AnalyzerEdge, ImportErrorGuardedFallbackKeepsBothCandidates) {
  const std::string src = R"(
def load(x):
    try:
        import tensorflow as backend
    except ImportError:
        import mxnet as backend
    return backend.array(x)
)";
  const auto plan = flow::plan_function_dependencies(src, "load", index());
  EXPECT_TRUE(plan.import_names.count("tensorflow"));
  EXPECT_TRUE(plan.import_names.count("mxnet"));
  const auto scan = pysrc::scan_function(pysrc::parse_module(src), "load");
  for (const auto& rec : scan.imports) {
    // The primary import sits in the try body and is marked guarded; the
    // fallback in the except handler is recorded but not guarded.
    if (rec.top_level() == "tensorflow") {
      EXPECT_TRUE(rec.guarded) << "tensorflow should be ImportError-guarded";
    }
  }
  expect_stable_function_plan(src, "load");
}

TEST(AnalyzerEdge, ModulePlanRepeatsAgreeOnGuardedAndStarImports) {
  const std::string src = R"(
import importlib
from scipy import *

try:
    import pandas
except ImportError:
    pandas = None

backend = importlib.import_module("mxnet")
)";
  const auto cold = flow::plan_module_dependencies_uncached(src, index());
  EXPECT_TRUE(cold.import_names.count("scipy"));
  EXPECT_TRUE(cold.import_names.count("pandas"));
  EXPECT_TRUE(cold.import_names.count("mxnet"));
  for (int i = 0; i < 3; ++i) {
    const auto warm = flow::plan_module_dependencies(src, index());
    EXPECT_EQ(plan_fingerprint(warm), plan_fingerprint(cold));
  }
}

TEST(AnalyzerEdge, WhitespaceVariantsAreDistinctCacheEntries) {
  // Two sources that differ only in trailing whitespace are different
  // content — the cache must not conflate them (full-text keys, not
  // normalized ones).
  const std::string a = "def f(x):\n    import numpy\n    return x\n";
  const std::string b = "def f(x):\n    import numpy\n    return x\n\n";
  flow::clear_plan_cache();
  flow::plan_function_dependencies(a, "f", index());
  flow::plan_function_dependencies(b, "f", index());
  EXPECT_EQ(flow::plan_cache_stats().misses, 2)
      << "byte-distinct sources must occupy distinct entries";
  EXPECT_EQ(flow::plan_cache_stats().hits, 0);
}

}  // namespace
}  // namespace lfm
