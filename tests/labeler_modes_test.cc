// Tests for the labeling-objective and retry-policy ablation knobs.
#include <gtest/gtest.h>

#include "alloc/labeler.h"
#include "util/rng.h"

namespace lfm::alloc {
namespace {

LabelerConfig cfg() {
  LabelerConfig c;
  c.whole_node = Resources{16, 64e9, 200e9};
  c.guess = Resources{1, 1e9, 1e9};
  c.strategy = Strategy::kAuto;
  c.warmup_samples = 1;
  c.headroom = 1.0;
  return c;
}

void feed_bimodal(CategoryLabeler& labeler) {
  // 90 light (2 GB), 10 heavy (30 GB) observations.
  for (int i = 0; i < 90; ++i) labeler.observe_success({1.0, 2e9, 1e9});
  for (int i = 0; i < 10; ++i) labeler.observe_success({1.0, 30e9, 1e9});
}

TEST(LabelModes, Names) {
  EXPECT_STREQ(label_mode_name(LabelMode::kExpectedCost), "expected-cost");
  EXPECT_STREQ(label_mode_name(LabelMode::kMaxSeen), "max-seen");
  EXPECT_STREQ(label_mode_name(LabelMode::kPercentile95), "p95");
  EXPECT_STREQ(retry_policy_name(RetryPolicy::kWholeNode), "whole-node");
  EXPECT_STREQ(retry_policy_name(RetryPolicy::kGeometric), "geometric");
}

TEST(LabelModes, ExpectedCostPicksLightModeOnBimodal) {
  LabelerConfig c = cfg();
  c.label_mode = LabelMode::kExpectedCost;
  CategoryLabeler labeler(c);
  feed_bimodal(labeler);
  EXPECT_LT(labeler.allocation(0).memory_bytes, 4e9);
}

TEST(LabelModes, MaxSeenCoversEverythingOnBimodal) {
  LabelerConfig c = cfg();
  c.label_mode = LabelMode::kMaxSeen;
  CategoryLabeler labeler(c);
  feed_bimodal(labeler);
  EXPECT_GE(labeler.allocation(0).memory_bytes, 30e9);
}

TEST(LabelModes, P95BetweenTheTwo) {
  LabelerConfig c = cfg();
  c.label_mode = LabelMode::kPercentile95;
  CategoryLabeler labeler(c);
  feed_bimodal(labeler);
  const double p95 = labeler.allocation(0).memory_bytes;
  // 95th percentile of 90/10 bimodal falls inside the heavy mode.
  EXPECT_GE(p95, 2e9);
  EXPECT_GE(30e9 + 1e9, p95);
}

TEST(LabelModes, MaxSeenNeverBelowObservedMax) {
  LabelerConfig c = cfg();
  c.label_mode = LabelMode::kMaxSeen;
  CategoryLabeler labeler(c);
  Rng rng(5);
  double max_seen = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double m = rng.uniform(1e9, 50e9);
    max_seen = std::max(max_seen, m);
    labeler.observe_success({1.0, m, 1e9});
    EXPECT_GE(labeler.allocation(0).memory_bytes, max_seen * 0.999);
  }
}

TEST(RetryPolicies, WholeNodeJumpsToMax) {
  LabelerConfig c = cfg();
  c.retry_policy = RetryPolicy::kWholeNode;
  CategoryLabeler labeler(c);
  feed_bimodal(labeler);
  EXPECT_DOUBLE_EQ(labeler.allocation(1).memory_bytes, 64e9);
  EXPECT_DOUBLE_EQ(labeler.allocation(5).memory_bytes, 64e9);
}

TEST(RetryPolicies, GeometricDoublesPerAttempt) {
  LabelerConfig c = cfg();
  c.retry_policy = RetryPolicy::kGeometric;
  CategoryLabeler labeler(c);
  feed_bimodal(labeler);
  const double base = labeler.allocation(0).memory_bytes;
  EXPECT_NEAR(labeler.allocation(1).memory_bytes, base * 2.0, 1.0);
  EXPECT_NEAR(labeler.allocation(2).memory_bytes, base * 4.0, 1.0);
  // Capped at the whole node eventually.
  EXPECT_DOUBLE_EQ(labeler.allocation(10).memory_bytes, 64e9);
}

TEST(RetryPolicies, GeometricAppliesToGuessStrategyToo) {
  LabelerConfig c = cfg();
  c.strategy = Strategy::kGuess;
  c.guess = Resources{1, 1e9, 1e9};
  c.retry_policy = RetryPolicy::kGeometric;
  CategoryLabeler labeler(c);
  EXPECT_DOUBLE_EQ(labeler.allocation(0).memory_bytes, 1e9);
  EXPECT_DOUBLE_EQ(labeler.allocation(1).memory_bytes, 2e9);
  EXPECT_DOUBLE_EQ(labeler.allocation(2).memory_bytes, 4e9);
}

TEST(RetryPolicies, GeometricCoresStayIntegral) {
  LabelerConfig c = cfg();
  c.strategy = Strategy::kGuess;
  c.guess = Resources{3, 1e9, 1e9};
  c.retry_policy = RetryPolicy::kGeometric;
  CategoryLabeler labeler(c);
  const Resources a1 = labeler.allocation(1);
  EXPECT_DOUBLE_EQ(a1.cores, 6.0);
  const Resources a3 = labeler.allocation(3);
  EXPECT_DOUBLE_EQ(a3.cores, 16.0);  // capped at the node
}

TEST(RetryPolicies, UnmanagedUnaffectedByPolicies) {
  LabelerConfig c = cfg();
  c.strategy = Strategy::kUnmanaged;
  c.retry_policy = RetryPolicy::kGeometric;
  CategoryLabeler labeler(c);
  EXPECT_DOUBLE_EQ(labeler.allocation(0).cores, 16.0);
  EXPECT_DOUBLE_EQ(labeler.allocation(2).cores, 16.0);
}

}  // namespace
}  // namespace lfm::alloc
