// Unit tests for the package index and the dependency solver, including the
// paper-calibrated standard corpus.
#include <gtest/gtest.h>

#include "pkg/index.h"
#include "pkg/solver.h"

namespace lfm::pkg {
namespace {

PackageMeta make(const std::string& name, const std::string& version,
                 std::vector<std::string> deps = {}, int64_t size = 1000,
                 int files = 3) {
  PackageMeta m;
  m.name = name;
  m.version = Version::parse(version);
  for (const auto& d : deps) m.depends.push_back(Requirement::parse(d));
  m.size_bytes = size;
  m.file_count = files;
  return m;
}

TEST(PackageIndex, AddAndLookup) {
  PackageIndex index;
  index.add(make("a", "1.0"));
  index.add(make("a", "2.0"));
  EXPECT_TRUE(index.contains("a"));
  EXPECT_FALSE(index.contains("b"));
  const auto versions = index.versions("a");
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0]->version.str(), "2.0");  // newest first
}

TEST(PackageIndex, RejectsDuplicates) {
  PackageIndex index;
  index.add(make("a", "1.0"));
  EXPECT_THROW(index.add(make("a", "1.0")), Error);
}

TEST(PackageIndex, BestRespectsSpec) {
  PackageIndex index;
  index.add(make("a", "1.0"));
  index.add(make("a", "1.5"));
  index.add(make("a", "2.0"));
  const auto* best = index.best("a", VersionSpec::parse("<2.0"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->version.str(), "1.5");
  EXPECT_EQ(index.best("a", VersionSpec::parse(">3.0")), nullptr);
  EXPECT_EQ(index.best("nope", VersionSpec::any()), nullptr);
}

TEST(PackageIndex, BestSkipsPrereleasesByDefault) {
  PackageIndex index;
  index.add(make("a", "1.0"));
  index.add(make("a", "2.0rc1"));
  EXPECT_EQ(index.best("a", VersionSpec::any())->version.str(), "1.0");
  // Explicit constraint can still select the pre-release.
  EXPECT_EQ(index.best("a", VersionSpec::parse("==2.0rc1"))->version.str(), "2.0rc1");
}

TEST(Solver, SimpleChain) {
  PackageIndex index;
  index.add(make("a", "1.0", {"b>=1.0"}));
  index.add(make("b", "1.2", {"c"}));
  index.add(make("c", "0.1"));
  Solver solver(index);
  const auto result = solver.resolve({Requirement::parse("a")});
  ASSERT_TRUE(result.ok());
  const auto& pkgs = result.value().packages;
  EXPECT_EQ(pkgs.size(), 3u);
  EXPECT_EQ(pkgs.at("b")->version.str(), "1.2");
}

TEST(Solver, PicksNewestSatisfying) {
  PackageIndex index;
  index.add(make("a", "1.0"));
  index.add(make("a", "1.5"));
  index.add(make("a", "2.0"));
  Solver solver(index);
  const auto result = solver.resolve({Requirement::parse("a<2.0")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().packages.at("a")->version.str(), "1.5");
}

TEST(Solver, SharedDependencyConstraintsIntersect) {
  PackageIndex index;
  index.add(make("app", "1.0", {"x>=1.0", "y>=1.0"}));
  index.add(make("x", "1.0", {"z>=1.5"}));
  index.add(make("y", "1.0", {"z<2.0"}));
  index.add(make("z", "1.0"));
  index.add(make("z", "1.7"));
  index.add(make("z", "2.5"));
  Solver solver(index);
  const auto result = solver.resolve({Requirement::parse("app")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().packages.at("z")->version.str(), "1.7");
}

TEST(Solver, BacktracksOnConflict) {
  // Newest b requires z>=2, but a requires z<2: solver must fall back to
  // the older b that accepts z 1.x.
  PackageIndex index;
  index.add(make("a", "1.0", {"b", "z<2.0"}));
  index.add(make("b", "2.0", {"z>=2.0"}));
  index.add(make("b", "1.0", {"z>=1.0"}));
  index.add(make("z", "1.5"));
  index.add(make("z", "2.5"));
  Solver solver(index);
  const auto result = solver.resolve({Requirement::parse("a")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().packages.at("b")->version.str(), "1.0");
  EXPECT_EQ(result.value().packages.at("z")->version.str(), "1.5");
}

TEST(Solver, ReportsUnknownPackage) {
  PackageIndex index;
  index.add(make("a", "1.0", {"ghost"}));
  Solver solver(index);
  const auto result = solver.resolve({Requirement::parse("a")});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("ghost"), std::string::npos);
}

TEST(Solver, ReportsUnsatisfiableConstraint) {
  PackageIndex index;
  index.add(make("a", "1.0"));
  Solver solver(index);
  const auto result = solver.resolve({Requirement::parse("a>=2.0")});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("a"), std::string::npos);
}

TEST(Solver, HandlesDependencyCycles) {
  // Real Python metadata contains cycles; the solver must terminate.
  PackageIndex index;
  index.add(make("a", "1.0", {"b"}));
  index.add(make("b", "1.0", {"a"}));
  Solver solver(index);
  const auto result = solver.resolve({Requirement::parse("a")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().packages.size(), 2u);
}

TEST(Solver, EmptyRootsYieldEmptyResolution) {
  PackageIndex index;
  Solver solver(index);
  const auto result = solver.resolve({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().packages.empty());
}

TEST(Solver, ResolutionAggregates) {
  PackageIndex index;
  index.add(make("a", "1.0", {"b"}, 100, 2));
  index.add(make("b", "1.0", {}, 50, 3));
  Solver solver(index);
  const auto result = solver.resolve({Requirement::parse("a")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_size(), 150);
  EXPECT_EQ(result.value().total_files(), 5);
}

// --- the calibrated standard corpus ------------------------------------------

TEST(StandardIndex, CorpusIsResolvable) {
  const PackageIndex& index = standard_index();
  Solver solver(index);
  // Every package in the corpus must resolve on its own (closure exists).
  for (const auto& name : index.package_names()) {
    const auto result = solver.resolve({Requirement::parse(name)});
    EXPECT_TRUE(result.ok()) << name << ": " << (result.ok() ? "" : result.error());
  }
}

TEST(StandardIndex, TensorFlowHasLargeClosure) {
  const PackageIndex& index = standard_index();
  Solver solver(index);
  const auto tf = solver.resolve({Requirement::parse("tensorflow")});
  ASSERT_TRUE(tf.ok());
  const auto np = solver.resolve({Requirement::parse("numpy")});
  ASSERT_TRUE(np.ok());
  // Table II shape: TF's dependency count and size dominate numpy's.
  EXPECT_GT(tf.value().packages.size(), np.value().packages.size() + 10);
  EXPECT_GT(tf.value().total_size(), np.value().total_size() * 5);
}

TEST(StandardIndex, ApplicationsResolveWithExpectedStacks) {
  const PackageIndex& index = standard_index();
  Solver solver(index);
  const auto hep = solver.resolve({Requirement::parse("coffea")});
  ASSERT_TRUE(hep.ok());
  EXPECT_TRUE(hep.value().packages.count("numpy"));
  EXPECT_TRUE(hep.value().packages.count("uproot"));

  const auto drug = solver.resolve({Requirement::parse("candle-drugscreen")});
  ASSERT_TRUE(drug.ok());
  EXPECT_TRUE(drug.value().packages.count("tensorflow"));
  EXPECT_TRUE(drug.value().packages.count("rdkit"));

  const auto gdc = solver.resolve({Requirement::parse("gdc-dnaseq-pipeline")});
  ASSERT_TRUE(gdc.ok());
  EXPECT_TRUE(gdc.value().packages.count("ensembl-vep"));
  EXPECT_TRUE(gdc.value().packages.count("gatk4"));
}

TEST(StandardIndex, PythonInterpreterClosureIncludesNativeDeps) {
  const PackageIndex& index = standard_index();
  Solver solver(index);
  const auto py = solver.resolve({Requirement::parse("python")});
  ASSERT_TRUE(py.ok());
  EXPECT_TRUE(py.value().packages.count("openssl"));
  EXPECT_TRUE(py.value().packages.count("zlib"));
  EXPECT_EQ(py.value().packages.at("python")->version.str(), "3.8.5");
}

}  // namespace
}  // namespace lfm::pkg
