// Tests for the content-addressed analysis caches: the hash utility, the
// shared parse cache, the plan/solver memos, packer output dedup, bulk
// analyze_all determinism, and invalidation on index mutation.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "flow/analysis.h"
#include "flow/plan.h"
#include "flow/pyapp.h"
#include "pkg/environment.h"
#include "pkg/index.h"
#include "pkg/packer.h"
#include "pkg/solver.h"
#include "pysrc/lexer.h"
#include "pysrc/parse_cache.h"
#include "util/hash.h"

namespace lfm {
namespace {

const pkg::PackageIndex& index() { return pkg::standard_index(); }

std::string plan_fingerprint(const flow::DependencyPlan& plan) {
  std::ostringstream out;
  for (const auto& name : plan.import_names) out << name << ';';
  out << '|';
  for (const auto& req : plan.requirements) out << req.str() << ';';
  out << '|';
  for (const auto& d : plan.diagnostics) out << d.message << ';';
  return out.str();
}

std::string numbered_source(int i) {
  return "def task" + std::to_string(i) + "(x):\n    import numpy\n    return x + " +
         std::to_string(i) + "\n";
}

TEST(Hash64, DistinctInputsDistinctHashes) {
  std::set<uint64_t> seen;
  std::vector<std::string> inputs;
  for (int i = 0; i < 2000; ++i) inputs.push_back("input-" + std::to_string(i));
  inputs.push_back("");
  inputs.push_back(std::string(1, '\0'));
  inputs.push_back(std::string(2, '\0'));
  inputs.push_back(std::string(1000, 'a'));
  inputs.push_back(std::string(1001, 'a'));
  for (const auto& s : inputs) seen.insert(hash64(s));
  EXPECT_EQ(seen.size(), inputs.size()) << "hash64 collided on a small sample";
}

TEST(Hash64, StableAndSeedSensitive) {
  EXPECT_EQ(hash64("def f(): pass"), hash64("def f(): pass"));
  EXPECT_NE(hash64("x", 1), hash64("x", 2));
  EXPECT_NE(hash_combine64(1, 2), hash_combine64(2, 1));
}

TEST(ParseCache, RepeatParseIsAHitOnSharedAst) {
  pysrc::clear_parse_cache();
  const std::string src = "def f():\n    return 41\n";
  const auto first = pysrc::parse_module_shared(src);
  const auto second = pysrc::parse_module_shared(src);
  EXPECT_EQ(first.get(), second.get()) << "hit must share one immutable AST";
  const auto stats = pysrc::parse_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ParseCache, EvictsLeastRecentlyUsedAtCapacity) {
  pysrc::clear_parse_cache();
  pysrc::set_parse_cache_capacity(2);
  const auto kept = pysrc::parse_module_shared(numbered_source(0));
  pysrc::parse_module_shared(numbered_source(1));
  pysrc::parse_module_shared(numbered_source(0));  // bump 0's recency
  pysrc::parse_module_shared(numbered_source(2));  // evicts 1
  EXPECT_EQ(pysrc::parse_cache_stats().evictions, 1);
  // 0 survived (hit); 1 must re-parse (miss).
  EXPECT_EQ(pysrc::parse_module_shared(numbered_source(0)).get(), kept.get());
  pysrc::parse_module_shared(numbered_source(1));
  const auto stats = pysrc::parse_cache_stats();
  EXPECT_EQ(stats.misses, 4);  // 0, 1, 2, then 1 again
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  pysrc::set_parse_cache_capacity(1024);
  EXPECT_EQ(pysrc::parse_cache_stats().capacity, 1024u);
}

TEST(ParseCache, SyntaxErrorsAreNeverCached) {
  pysrc::clear_parse_cache();
  EXPECT_THROW(pysrc::parse_module_shared("def broken(:\n"), pysrc::SyntaxError);
  EXPECT_THROW(pysrc::parse_module_shared("def broken(:\n"), pysrc::SyntaxError);
  EXPECT_EQ(pysrc::parse_cache_stats().entries, 0u);
}

TEST(PlanCache, CachedPlanMatchesUncachedAndCountsHits) {
  flow::clear_plan_cache();
  const std::string src =
      "def work(x):\n    import pandas\n    import sklearn\n    return x\n";
  const auto cold = flow::plan_function_dependencies_uncached(src, "work", index());
  const auto first = flow::plan_function_dependencies(src, "work", index());
  const auto second = flow::plan_function_dependencies(src, "work", index());
  EXPECT_EQ(plan_fingerprint(first), plan_fingerprint(cold));
  EXPECT_EQ(plan_fingerprint(second), plan_fingerprint(cold));
  const auto stats = flow::plan_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
}

TEST(PlanCache, FunctionAndModulePlansDoNotAlias) {
  flow::clear_plan_cache();
  const std::string src =
      "import scipy\n\ndef f(x):\n    import numpy\n    return x\n";
  const auto fn_plan = flow::plan_function_dependencies(src, "f", index());
  const auto mod_plan = flow::plan_module_dependencies(src, index());
  EXPECT_EQ(fn_plan.import_names, (std::set<std::string>{"numpy"}));
  EXPECT_EQ(mod_plan.import_names, (std::set<std::string>{"scipy", "numpy"}));
  EXPECT_EQ(flow::plan_cache_stats().misses, 2);
}

TEST(PlanCache, MissWarmsSharedParseCache) {
  flow::clear_plan_cache();
  pysrc::clear_parse_cache();
  const std::string src = "def g(x):\n    import numpy\n    return x\n";
  flow::plan_function_dependencies(src, "g", index());
  EXPECT_EQ(pysrc::parse_cache_stats().misses, 1);
  // The same source through the parse cache is now free.
  pysrc::parse_module_shared(src);
  EXPECT_EQ(pysrc::parse_cache_stats().misses, 1);
  EXPECT_EQ(pysrc::parse_cache_stats().hits, 1);
}

TEST(SolverCache, RepeatResolveHitsRegardlessOfRootOrder) {
  pkg::clear_solver_cache();
  const pkg::Solver solver(index());
  const std::vector<pkg::Requirement> ab = {pkg::Requirement::parse("numpy"),
                                            pkg::Requirement::parse("scipy")};
  const std::vector<pkg::Requirement> ba = {pkg::Requirement::parse("scipy"),
                                            pkg::Requirement::parse("numpy")};
  const auto first = solver.resolve(ab);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(solver.last_steps(), 0);
  const auto second = solver.resolve(ba);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(solver.last_steps(), 0) << "hit must skip the search entirely";
  const auto stats = pkg::solver_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  // Same chosen packages either way.
  ASSERT_EQ(first.value().packages.size(), second.value().packages.size());
  for (const auto& [name, meta] : first.value().packages) {
    ASSERT_TRUE(second.value().packages.count(name));
    EXPECT_EQ(second.value().packages.at(name)->spec_str(), meta->spec_str());
  }
  const auto cold = solver.resolve_uncached(ab);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().packages.size(), first.value().packages.size());
}

TEST(SolverCache, FailuresAreCachedToo) {
  pkg::clear_solver_cache();
  const pkg::Solver solver(index());
  const std::vector<pkg::Requirement> bad = {
      pkg::Requirement::parse("numpy>=99.0")};
  EXPECT_FALSE(solver.resolve(bad).ok());
  EXPECT_FALSE(solver.resolve(bad).ok());
  EXPECT_EQ(pkg::solver_cache_stats().hits, 1);
}

TEST(IndexGeneration, MutationAndCopiesRefreshTheStamp) {
  pkg::PackageIndex idx = pkg::make_standard_index();
  const uint64_t g0 = idx.generation();
  pkg::PackageMeta meta;
  meta.name = "freshpkg";
  meta.version = pkg::Version::parse("1.0");
  idx.add(meta);
  const uint64_t g1 = idx.generation();
  EXPECT_NE(g0, g1);
  const pkg::PackageIndex copy = idx;
  EXPECT_NE(copy.generation(), g1);
  EXPECT_NE(copy.generation(), pkg::make_standard_index().generation());
  EXPECT_EQ(index().generation(), index().generation());
}

TEST(IndexGeneration, PlanAndResolutionCachesInvalidateOnAdd) {
  flow::clear_plan_cache();
  pkg::clear_solver_cache();
  pkg::PackageIndex idx = pkg::make_standard_index();
  const std::string src = "def f(x):\n    import brandnew\n    return x\n";

  const auto before = flow::plan_function_dependencies(src, "f", idx);
  bool warned = false;
  for (const auto& d : before.diagnostics) {
    if (d.message.find("brandnew") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << "unknown package must warn before it is published";

  pkg::PackageMeta meta;
  meta.name = "brandnew";
  meta.version = pkg::Version::parse("3.1");
  idx.add(meta);

  // Same source, same function — but the generation moved, so the cache may
  // not serve the stale plan.
  const auto after = flow::plan_function_dependencies(src, "f", idx);
  bool pinned = false;
  for (const auto& req : after.requirements) {
    if (req.str() == "brandnew==3.1") pinned = true;
  }
  EXPECT_TRUE(pinned);

  const pkg::Solver solver(idx);
  const auto resolved = solver.resolve({pkg::Requirement::parse("brandnew")});
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().packages.at("brandnew")->spec_str(), "brandnew==3.1");
}

TEST(PackCache, SameRequirementsShareOneArchive) {
  pkg::clear_pack_cache();
  const pkg::Solver solver(index());
  const auto resolution = solver.resolve({pkg::Requirement::parse("numpy")});
  ASSERT_TRUE(resolution.ok());
  const pkg::Environment env_a("env-a", resolution.value());
  const pkg::Environment env_b("env-b", resolution.value());
  const auto tar_a = pkg::packed_environment_tar(env_a);
  const auto tar_b = pkg::packed_environment_tar(env_b);
  EXPECT_EQ(tar_a.get(), tar_b.get())
      << "environments with one package signature must share one archive";
  const auto stats = pkg::pack_cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);

  // The archive is a real tar carrying the pinned requirements and the
  // relocatable prefix.
  const pkg::Archive archive = pkg::read_tar(*tar_a);
  const auto* reqs = archive.find("requirements.txt");
  ASSERT_NE(reqs, nullptr);
  const std::string reqs_text(reqs->data.begin(), reqs->data.end());
  EXPECT_NE(reqs_text.find("numpy=="), std::string::npos);
  bool prefix_found = false;
  const std::string prefix = pkg::packed_environment_prefix(env_a);
  for (const auto& entry : archive.entries()) {
    const std::string text(entry.data.begin(), entry.data.end());
    if (text.find(prefix) != std::string::npos) prefix_found = true;
  }
  EXPECT_TRUE(prefix_found);

  // A different package set gets a different archive.
  const auto other = solver.resolve({pkg::Requirement::parse("scipy")});
  ASSERT_TRUE(other.ok());
  const auto tar_c = pkg::packed_environment_tar(pkg::Environment("env-c", other.value()));
  EXPECT_NE(tar_c.get(), tar_a.get());
}

TEST(AnalyzeAll, DeterministicAcrossThreadCounts) {
  std::vector<flow::AnalysisRequest> requests;
  const char* imports[] = {"numpy", "scipy", "pandas", "sklearn", "matplotlib"};
  for (int i = 0; i < 200; ++i) {
    std::string src = "def job" + std::to_string(i % 7) + "(x):\n";
    src += "    import " + std::string(imports[i % 5]) + "\n";
    src += "    return x\n";
    requests.push_back({std::move(src), "job" + std::to_string(i % 7)});
  }
  requests.push_back({"import tensorflow\nRATE = 3\n", ""});  // module plan

  std::vector<std::string> baseline;
  for (const auto& plans : {flow::analyze_all(requests, index(), 1),
                            flow::analyze_all(requests, index(), 3),
                            flow::analyze_all(requests, index(), 16),
                            flow::analyze_all(requests, index(), 0)}) {
    ASSERT_EQ(plans.size(), requests.size());
    std::vector<std::string> prints;
    prints.reserve(plans.size());
    for (const auto& plan : plans) prints.push_back(plan_fingerprint(plan));
    if (baseline.empty()) {
      baseline = prints;
    } else {
      EXPECT_EQ(prints, baseline) << "results must not depend on thread count";
    }
  }
}

TEST(AnalyzeAll, ConcurrentDistinctSourcesParseOncePerSource) {
  flow::clear_plan_cache();
  pysrc::clear_parse_cache();
  std::vector<flow::AnalysisRequest> requests;
  constexpr int kDistinct = 12;
  for (int i = 0; i < 600; ++i) {
    requests.push_back({numbered_source(i % kDistinct),
                        "task" + std::to_string(i % kDistinct)});
  }
  const auto plans = flow::analyze_all(requests, index(), 8);
  ASSERT_EQ(plans.size(), requests.size());
  // Racing workers may double-parse a source at most once in a blue moon;
  // the cache guarantees each distinct source costs O(1) parses, not O(N).
  EXPECT_LE(pysrc::parse_cache_stats().misses, 2 * kDistinct);
  EXPECT_GE(pysrc::parse_cache_stats().misses, kDistinct);
}

TEST(PythonApp, RepeatInvocationsDoNotReparse) {
  const std::string src =
      "@python_app\ndef add(a, b):\n    return a + b\n";
  flow::App app = flow::python_app(src, "add");
  pysrc::clear_parse_cache();  // construction parsing is done; count from here
  const auto before = pysrc::parse_cache_stats().misses;
  for (int i = 0; i < 50; ++i) {
    const serde::Value args(serde::ValueList{serde::Value(i), serde::Value(2 * i)});
    const serde::Value result = app.fn(args);
    EXPECT_EQ(result.as_int(), 3 * i);
  }
  EXPECT_EQ(pysrc::parse_cache_stats().misses, before)
      << "invocations must reuse the shared AST, not re-parse the body";
}

}  // namespace
}  // namespace lfm
