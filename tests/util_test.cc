// Unit tests for util: rng determinism and distributions, statistics,
// string helpers, unit formatting, error types.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <set>

#include "util/error.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/units.h"

namespace lfm {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 2), Error);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(5.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.25);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.truncated_normal(50.0, 30.0, 20.0, 60.0);
    EXPECT_GE(v, 20.0);
    EXPECT_LE(v, 60.0);
  }
}

TEST(Rng, TruncatedNormalRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.truncated_normal(0, 1, 5, 2), Error);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(Rng, WeightedIndexRejectsBadWeights) {
  Rng rng(1);
  std::vector<double> empty;
  EXPECT_THROW(rng.weighted_index(empty), Error);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), Error);
  std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(negative), Error);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  Rng b(42);
  b.next();  // fork consumed one draw
  // The child stream should not equal the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (child.next() != b.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Samples, PercentilesExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, PercentileValidation) {
  Samples s;
  EXPECT_THROW(s.percentile(50), Error);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), Error);
  EXPECT_THROW(s.percentile(101), Error);
  EXPECT_DOUBLE_EQ(s.percentile(50), 1.0);
}

TEST(Samples, AddAfterPercentileResorts) {
  Samples s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
  s.add(30.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
}

TEST(Histogram, QuantileAndCounts) {
  Histogram h(10.0, 10);
  for (int i = 0; i < 90; ++i) h.add(5.0);   // bucket 0
  for (int i = 0; i < 10; ++i) h.add(95.0);  // bucket 9
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 100.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 95.0);
}

TEST(Histogram, OverflowGoesToLastBucket) {
  Histogram h(1.0, 4);
  h.add(100.0);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_DOUBLE_EQ(h.bucket_top(100.0), 4.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 4), Error);
  EXPECT_THROW(Histogram(1.0, 0), Error);
  Histogram h(1.0, 4);
  EXPECT_THROW(h.quantile(0.5), Error);  // empty
  h.add(1.0);
  EXPECT_THROW(h.quantile(1.5), Error);
}

TEST(Strings, SplitAndJoin) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split_nonempty("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  hi\t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("numpy>=1.19", "numpy"));
  EXPECT_FALSE(starts_with("np", "numpy"));
  EXPECT_TRUE(ends_with("env.tar.gz", ".gz"));
  EXPECT_FALSE(ends_with("x", "longer"));
}

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strformat("%05.1f", 2.25), "002.2");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(500), "500 B");
  EXPECT_EQ(format_bytes(240_MB), "240.0 MB");
  EXPECT_EQ(format_bytes(1500_MB), "1.50 GB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500.0 ms");
  EXPECT_EQ(format_seconds(42.0), "42.0 s");
  EXPECT_EQ(format_seconds(600.0), "10.0 min");
  EXPECT_EQ(format_seconds(7200.0), "2.00 h");
}

TEST(ResultType, SuccessAndFailure) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_THROW(ok.error(), Error);

  auto bad = Result<int>::failure("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_THROW(bad.value(), Error);
}

TEST(StatusType, SuccessAndFailure) {
  EXPECT_TRUE(Status::success().ok());
  const Status s = Status::failure("why");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), "why");
}

TEST(LogHistogram, RejectsBadShape) {
  EXPECT_THROW(LogHistogram(0.0, 1.0, 8), Error);
  EXPECT_THROW(LogHistogram(-1.0, 1.0, 8), Error);
  EXPECT_THROW(LogHistogram(2.0, 1.0, 8), Error);
  EXPECT_THROW(LogHistogram(1.0, 1.0, 8), Error);
  EXPECT_THROW(LogHistogram(1e-3, 1e3, 0), Error);
}

TEST(LogHistogram, Empty) {
  LogHistogram h(1e-3, 1e3, 12);
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.0);
  EXPECT_THROW(h.quantile(0.5), Error);
}

TEST(LogHistogram, SingleSample) {
  LogHistogram h(1e-3, 1e3, 12);
  h.add(2.5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min_seen(), 2.5);
  EXPECT_DOUBLE_EQ(h.max_seen(), 2.5);
  // Every quantile is the one occupied bucket's upper edge, which must
  // bound the sample from above and stay within (lo, hi].
  const double q = h.quantile(0.5);
  EXPECT_GE(q, 2.5);
  EXPECT_LE(q, h.hi());
  EXPECT_LE(h.quantile(0.0), q);  // q=0 reports the lowest bucket edge
  EXPECT_DOUBLE_EQ(h.quantile(1.0), q);
  EXPECT_THROW(h.quantile(-0.1), Error);
  EXPECT_THROW(h.quantile(1.1), Error);
  // Exactly one bucket holds the sample.
  int64_t occupied = 0;
  for (size_t i = 0; i < h.bucket_count(); ++i) occupied += h.bucket(i);
  EXPECT_EQ(occupied, 1);
}

TEST(LogHistogram, OutOfRangeClamps) {
  LogHistogram h(1.0, 100.0, 4);
  h.add(0.5);     // below lo: underflow bucket 0
  h.add(-3.0);    // negative: also bucket 0
  h.add(1e9);     // beyond hi: clamped to the last bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 1);
  // min/max report the raw values even when the bucket clamps.
  EXPECT_DOUBLE_EQ(h.min_seen(), -3.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 1e9);
  // The last edge is exactly hi.
  EXPECT_DOUBLE_EQ(h.bucket_edge(h.bucket_count() - 1), 100.0);
}

TEST(LogHistogram, EdgesGrowGeometrically) {
  LogHistogram h(1.0, 16.0, 4);  // edges 2, 4, 8, 16
  EXPECT_NEAR(h.bucket_edge(0), 2.0, 1e-9);
  EXPECT_NEAR(h.bucket_edge(1), 4.0, 1e-9);
  EXPECT_NEAR(h.bucket_edge(2), 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.bucket_edge(3), 16.0);
  h.add(3.0);  // (2, 4] -> bucket 1
  EXPECT_EQ(h.bucket(1), 1);
  h.add(2.0);  // boundary lands in the lower bucket: (1, 2] -> bucket 0
  EXPECT_EQ(h.bucket(0), 1);
}

TEST(LogHistogram, QuantilesFromManySamples) {
  LogHistogram h(1e-3, 1e3, 96);
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i) / 100.0);  // 0.01..10
  // p50 ~ 5.0, p99 ~ 9.9; bucket edges are within one relative step.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 5.0 * 0.16);
  EXPECT_NEAR(h.quantile(0.99), 9.9, 9.9 * 0.16);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.5));
}

TEST(LogHistogram, MergeCombinesAndChecksShape) {
  LogHistogram a(1.0, 100.0, 8);
  LogHistogram b(1.0, 100.0, 8);
  a.add(2.0);
  a.add(50.0);
  b.add(7.0);
  b.add(0.1);
  a.merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.sum(), 59.1);
  EXPECT_DOUBLE_EQ(a.min_seen(), 0.1);
  EXPECT_DOUBLE_EQ(a.max_seen(), 50.0);
  // Merging an empty histogram is a no-op; empty.merge(full) adopts stats.
  LogHistogram empty(1.0, 100.0, 8);
  a.merge(empty);
  EXPECT_EQ(a.count(), 4);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 4);
  EXPECT_DOUBLE_EQ(empty.min_seen(), 0.1);
  // Shape mismatches are rejected in every dimension.
  LogHistogram wrong_buckets(1.0, 100.0, 9);
  LogHistogram wrong_lo(2.0, 100.0, 8);
  LogHistogram wrong_hi(1.0, 200.0, 8);
  EXPECT_THROW(a.merge(wrong_buckets), Error);
  EXPECT_THROW(a.merge(wrong_lo), Error);
  EXPECT_THROW(a.merge(wrong_hi), Error);
}

TEST(Io, WriteAllThenReadAvailableRoundtrip) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::vector<uint8_t> payload(100000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  // Writer thread not needed: 100 KB fits a pipe? No — default pipe buffer
  // is 64 KB, so write from a forked child to exercise the short-write loop.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    const bool ok = io::write_all(fds[1], payload.data(), payload.size());
    close(fds[1]);
    _exit(ok ? 0 : 1);
  }
  close(fds[1]);
  std::vector<uint8_t> got;
  EXPECT_EQ(io::read_available(fds[0], got), io::ReadStatus::kEof);
  close(fds[0]);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_EQ(status, 0);
  EXPECT_EQ(got, payload);
}

TEST(Io, ReadAvailableReportsAgainOnDrainedNonblockingFd) {
  int fds[2];
  ASSERT_EQ(pipe2(fds, O_NONBLOCK), 0);
  const uint8_t data[] = {1, 2, 3};
  ASSERT_TRUE(io::write_all(fds[1], data, sizeof data));
  std::vector<uint8_t> got;
  EXPECT_EQ(io::read_available(fds[0], got), io::ReadStatus::kAgain);
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3}));
  // Drained and still open: kAgain again, buffer appends nothing.
  EXPECT_EQ(io::read_available(fds[0], got), io::ReadStatus::kAgain);
  EXPECT_EQ(got.size(), 3u);
  close(fds[1]);
  EXPECT_EQ(io::read_available(fds[0], got), io::ReadStatus::kEof);
  close(fds[0]);
}

TEST(Io, ErrorsSurfaceAsFalseOrKError) {
  std::vector<uint8_t> buffer;
  const uint8_t byte = 0;
  EXPECT_FALSE(io::write_all(-1, &byte, 1));
  EXPECT_EQ(io::read_available(-1, buffer), io::ReadStatus::kError);
  // Writing to a read end is EBADF too.
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  EXPECT_FALSE(io::write_all(fds[0], &byte, 1));
  close(fds[0]);
  close(fds[1]);
}

}  // namespace
}  // namespace lfm
