// Tests for the AST unparser and function-source extraction: fixed-point
// stability (parse(unparse(x)) produces the same rendering) and semantic
// preservation of the import scan across a round trip.
#include <gtest/gtest.h>

#include "pysrc/imports.h"
#include "pysrc/parser.h"
#include "pysrc/unparse.h"
#include "util/error.h"

namespace lfm::pysrc {
namespace {

// Round-trip helper: source -> AST -> source -> AST -> source must be a
// fixed point after the first rendering.
void expect_fixed_point(const std::string& source) {
  const std::string once = unparse(parse_module(source));
  const std::string twice = unparse(parse_module(once));
  EXPECT_EQ(once, twice) << "source:\n" << source;
}

TEST(Unparse, SimpleStatements) {
  EXPECT_EQ(unparse(parse_module("x = 1\n")), "x = 1\n");
  EXPECT_EQ(unparse(parse_module("pass\n")), "pass\n");
  EXPECT_EQ(unparse(parse_module("import numpy as np\n")), "import numpy as np\n");
  EXPECT_EQ(unparse(parse_module("from a.b import c as d\n")),
            "from a.b import c as d\n");
  EXPECT_EQ(unparse(parse_module("from ..pkg import mod\n")),
            "from ..pkg import mod\n");
  EXPECT_EQ(unparse(parse_module("del a, b\n")), "del a, b\n");
  EXPECT_EQ(unparse(parse_module("global g1, g2\n")), "global g1, g2\n");
}

TEST(Unparse, FunctionDef) {
  const char* src =
      "@app\n"
      "def f(a, b=1, *args, **kwargs) -> int:\n"
      "    return (a + b)\n";
  EXPECT_EQ(unparse(parse_module(src)), src);
}

TEST(Unparse, ControlFlowFixedPoints) {
  expect_fixed_point("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
  expect_fixed_point("for i in range(10):\n    print(i)\nelse:\n    done()\n");
  expect_fixed_point("while x:\n    x -= 1\n");
  expect_fixed_point(
      "try:\n    risky()\nexcept ValueError as e:\n    handle(e)\n"
      "except:\n    pass\nelse:\n    ok()\nfinally:\n    cleanup()\n");
  expect_fixed_point("with open(f) as fh, lock:\n    body(fh)\n");
  expect_fixed_point("async def f():\n    await g()\n");
  expect_fixed_point("class C(Base, meta=M):\n    x = 1\n    def m(self):\n        pass\n");
}

TEST(Unparse, ExpressionForms) {
  expect_fixed_point("x = a + b * c ** d\n");
  expect_fixed_point("y = a if cond else b\n");
  expect_fixed_point("z = lambda p, q: p < q\n");
  expect_fixed_point("w = f(1, *args, key=2, **kw)\n");
  expect_fixed_point("v = a.b.c[1:2:3]\n");
  expect_fixed_point("u = [i * j for i in a for j in b if i != j]\n");
  expect_fixed_point("t = {k: v for k, v in items}\n");
  expect_fixed_point("s = {1, 2, 3}\n");
  expect_fixed_point("r = {'a': 1, **extra}\n");
  expect_fixed_point("q = (1,)\n");
  expect_fixed_point("p = not (a in b)\n");
  expect_fixed_point("o = x is not None\n");
  expect_fixed_point("n = 'it\\'s'\n");
  expect_fixed_point("m = b'raw bytes'\n");
}

TEST(Unparse, ImportScanSurvivesRoundTrip) {
  const char* src = R"(
import parsl
from numpy import array

def stage():
    import tensorflow as tf
    try:
        import ujson
    except ImportError:
        import json
    return tf
)";
  const auto before = scan_module(parse_module(src));
  const auto after = scan_module(parse_module(unparse(parse_module(src))));
  ASSERT_EQ(before.imports.size(), after.imports.size());
  for (size_t i = 0; i < before.imports.size(); ++i) {
    EXPECT_EQ(before.imports[i].module, after.imports[i].module);
    EXPECT_EQ(before.imports[i].name, after.imports[i].name);
    EXPECT_EQ(before.imports[i].guarded, after.imports[i].guarded);
    EXPECT_EQ(before.imports[i].in_function, after.imports[i].in_function);
  }
  EXPECT_EQ(before.top_level_packages(), after.top_level_packages());
}

TEST(ExtractFunction, TopLevel) {
  const char* src = R"(
import os

@python_app
def target(a, b):
    import numpy
    return numpy.add(a, b)

def other():
    pass
)";
  const std::string extracted = extract_function_source(src, "target");
  EXPECT_NE(extracted.find("@python_app"), std::string::npos);
  EXPECT_NE(extracted.find("def target(a, b):"), std::string::npos);
  EXPECT_NE(extracted.find("import numpy"), std::string::npos);
  EXPECT_EQ(extracted.find("def other"), std::string::npos);
  EXPECT_EQ(extracted.find("import os"), std::string::npos);

  // The extracted source is itself valid and re-analyzable — the worker-side
  // path of Parsl's function shipping.
  const Module shipped = parse_module(extracted);
  const auto scan = scan_function(shipped, "target");
  EXPECT_EQ(scan.top_level_packages(), (std::set<std::string>{"numpy"}));
}

TEST(ExtractFunction, InsideClassAndConditional) {
  const char* src = R"(
class Tools:
    def helper(self):
        return 1

if True:
    def guarded():
        return 2
)";
  EXPECT_NE(extract_function_source(src, "helper").find("def helper"),
            std::string::npos);
  EXPECT_NE(extract_function_source(src, "guarded").find("def guarded"),
            std::string::npos);
}

TEST(ExtractFunction, MissingThrows) {
  EXPECT_THROW(extract_function_source("x = 1\n", "nope"), Error);
}

TEST(Unparse, StatementAndExpressionEntryPoints) {
  const Module m = parse_module("x = a + 1\n");
  EXPECT_EQ(unparse_statement(*m.body[0], 1), "    x = (a + 1)\n");
  const ExprPtr e = parse_expression("f(x)[0]");
  EXPECT_EQ(unparse_expression(*e), "f(x)[0]");
}


TEST(Unparse, FStringPrefixPreserved) {
  EXPECT_EQ(unparse(parse_module("x = f'{a} and {b:.2f}'\n")),
            "x = f'{a} and {b:.2f}'\n");
  expect_fixed_point("msg = f'task {name} used {mem} bytes'\n");
}

TEST(Unparse, RealisticApplicationFixedPoint) {
  const char* src = R"(
import parsl
from parsl import python_app

@python_app
def featurize(smiles, radius=2):
    import numpy as np
    from rdkit import Chem
    mols = [Chem.MolFromSmiles(s) for s in smiles]
    valid = [m for m in mols if m is not None]
    if not valid:
        raise ValueError('no valid molecules')
    return np.stack([fp(m, radius) for m in valid])

class Pipeline:
    stages = ['canonicalize', 'featurize', 'predict']

    def run(self, batches):
        futures = [featurize(b) for b in batches]
        return [f.result() for f in futures]
)";
  expect_fixed_point(src);
}

}  // namespace
}  // namespace lfm::pysrc
