// Cross-module integration tests: the full pipelines a user of this library
// would run, spanning analyzer -> solver -> packer, DFK -> LFM, workload ->
// master -> labeler, and the funcX layer over real kernels.
#include <gtest/gtest.h>

#include <filesystem>

#include "apps/drugscreen.h"
#include "apps/hep.h"
#include "apps/imageclass.h"
#include "faas/funcx.h"
#include "flow/dfk.h"
#include "flow/plan.h"
#include "serde/pickle.h"
#include "pkg/packer.h"
#include "sim/envdist.h"
#include "sim/site.h"
#include "wq/master.h"

namespace lfm {
namespace {

using serde::Value;
using serde::ValueDict;

TEST(Integration, AnalyzeSolvePackUnpackRoundtrip) {
  // Paper §V end to end: user code -> dependency plan -> minimal env ->
  // packed archive -> worker-side relocation -> byte-exact content.
  const char* src = R"(
def stage(batch):
    import numpy
    import pandas
    return pandas.DataFrame(numpy.asarray(batch))
)";
  const pkg::PackageIndex& index = pkg::standard_index();
  const auto plan = flow::plan_function_dependencies(src, "stage", index);
  const auto env = flow::build_environment("stage-env", plan, index);
  ASSERT_TRUE(env.ok());
  EXPECT_TRUE(env.value().requirements_txt().find("pandas==") != std::string::npos);

  // Materialize the synthetic file list into a real archive.
  pkg::Archive archive;
  const std::string prefix = "/master/envs/stage-env";
  int text_entries = 0;
  for (const auto& f : env.value().synthesize_files()) {
    if (f.is_text) {
      const std::string content = "prefix=" + prefix + "\n";
      archive.add_file(f.path, pkg::Bytes(content.begin(), content.end()));
      ++text_entries;
    }
  }
  ASSERT_GT(text_entries, 3);

  const pkg::Bytes wire = pkg::write_tar(archive);
  pkg::Archive received = pkg::read_tar(wire);
  EXPECT_EQ(received.file_count(), archive.file_count());
  const int relocated = pkg::relocate_prefix(received, prefix, "/worker/scratch/env");
  EXPECT_EQ(relocated, text_entries);
}

TEST(Integration, EnvironmentCostsFeedDistributionModel) {
  // The Table II / Fig 5 path: solve the HEP app env, then cost its
  // distribution on every site and confirm the packed method always wins
  // at scale.
  const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  auto res = solver.resolve({pkg::Requirement::parse("coffea")});
  ASSERT_TRUE(res.ok());
  const pkg::Environment env("hep", std::move(res).take());
  for (const sim::Site& site : sim::all_sites()) {
    const sim::EnvDistModel model(site);
    const double direct =
        model.setup_seconds(env, sim::DistributionMethod::kSharedFsDirect, 128);
    const double packed =
        model.setup_seconds(env, sim::DistributionMethod::kPackedTransfer, 128);
    EXPECT_GT(direct, packed) << site.name;
  }
}

TEST(Integration, DfkRunsRealHepKernelsUnderLfm) {
  flow::LocalLfmExecutor executor(2);
  flow::DataFlowKernel dfk(executor);
  flow::App analyze = flow::App::make("analyze", apps::hep::analysis_task);

  std::vector<flow::Future> futures;
  for (int i = 0; i < 4; ++i) {
    ValueDict args;
    args["events"] = Value(int64_t{20000});
    args["bins"] = Value(int64_t{20});
    args["lo"] = Value(0.0);
    args["hi"] = Value(100.0);
    args["seed"] = Value(int64_t{i});
    futures.push_back(dfk.submit(analyze, {flow::Arg(Value(std::move(args)))}));
  }
  dfk.wait_all();
  int64_t events = 0;
  for (const auto& f : futures) events += f.result().at("events").as_int();
  EXPECT_EQ(events, 80000);
  executor.drain();
  EXPECT_EQ(executor.observations().size(), 4u);
}

TEST(Integration, FullWorkloadStrategySweepAllApps) {
  // Every workload generator runs to completion under every strategy.
  struct Case {
    std::vector<wq::TaskSpec> tasks;
    alloc::Resources node;
    alloc::Resources guess;
  };
  apps::hep::Params hep_params;
  hep_params.tasks = 30;
  apps::drugscreen::Params drug_params;
  drug_params.molecules = 5;
  apps::imageclass::Params img_params;
  img_params.tasks = 20;
  std::vector<Case> cases;
  cases.push_back({apps::hep::generate(hep_params), {8, 8e9, 16e9},
                   apps::hep::guess_allocation()});
  cases.push_back({apps::drugscreen::generate(drug_params), {64, 192e9, 128e9},
                   apps::drugscreen::guess_allocation()});
  cases.push_back({apps::imageclass::generate(img_params), {16, 64e9, 200e9},
                   apps::imageclass::guess_allocation()});

  for (const auto& c : cases) {
    alloc::LabelerConfig cfg;
    cfg.whole_node = c.node;
    cfg.guess = c.guess;
    cfg.warmup_samples = 2;
    const std::vector<wq::WorkerSpec> workers(4, wq::WorkerSpec{c.node, 0.0});
    for (const auto strategy :
         {alloc::Strategy::kOracle, alloc::Strategy::kAuto, alloc::Strategy::kGuess,
          alloc::Strategy::kUnmanaged}) {
      const auto result = wq::run_scenario(strategy, cfg, workers, c.tasks, {});
      EXPECT_EQ(result.stats.tasks_completed + result.stats.tasks_failed,
                static_cast<int64_t>(c.tasks.size()))
          << alloc::strategy_name(strategy);
      EXPECT_EQ(result.stats.tasks_failed, 0) << alloc::strategy_name(strategy);
    }
  }
}

TEST(Integration, StrategyOrderingHoldsPerApp) {
  // The abstract's claim on every workload: managed strategies beat
  // Unmanaged by a wide margin.
  apps::hep::Params params;
  params.tasks = 60;
  const auto tasks = apps::hep::generate(params);
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{8, 8e9, 16e9};
  cfg.guess = apps::hep::guess_allocation();
  cfg.warmup_samples = 2;
  const std::vector<wq::WorkerSpec> workers(8, wq::WorkerSpec{cfg.whole_node, 0.0});
  const auto net = sim::nd_crc().network;
  const double oracle =
      wq::run_scenario(alloc::Strategy::kOracle, cfg, workers, tasks, net).stats.makespan;
  const double auto_t =
      wq::run_scenario(alloc::Strategy::kAuto, cfg, workers, tasks, net).stats.makespan;
  const double unmanaged =
      wq::run_scenario(alloc::Strategy::kUnmanaged, cfg, workers, tasks, net)
          .stats.makespan;
  EXPECT_LT(oracle, unmanaged);
  EXPECT_LT(auto_t, unmanaged);
  EXPECT_GT(unmanaged / oracle, 2.0);
}

TEST(Integration, FuncXServesRealKernels) {
  faas::FuncXService service;
  flow::LocalLfmExecutor executor(2);
  service.add_endpoint(std::make_shared<faas::Endpoint>("ep", executor));
  const auto id = service.registry().register_function(
      "classify", apps::imageclass::classify_task, {"keras"});
  std::vector<Value> batch;
  for (int i = 0; i < 4; ++i) {
    ValueDict args;
    args["size"] = Value(int64_t{16});
    args["seed"] = Value(int64_t{i});
    args["model_seed"] = Value(int64_t{9});
    batch.push_back(Value(std::move(args)));
  }
  auto futures = service.submit_batch(id, "ep", std::move(batch));
  for (auto& f : futures) {
    const Value v = f.result();
    EXPECT_GE(v.at("label").as_int(), 0);
    EXPECT_LT(v.at("label").as_int(), 10);
  }
  service.drain_all();
}

TEST(Integration, DrugPipelineKernelsChainThroughSerde) {
  // canonicalize -> featurize -> infer, passing results as pickled bytes
  // the way the wq wrapper would.
  const std::string smiles = apps::drugscreen::random_smiles(5, 16);
  ValueDict args;
  args["smiles"] = Value(smiles);
  const serde::Bytes wire1 =
      serde::dumps(apps::drugscreen::canonicalize_task(Value(args)));
  const Value canonical = serde::loads(wire1);
  ASSERT_TRUE(canonical.is_str());

  ValueDict args2;
  args2["smiles"] = Value(canonical.as_str());
  args2["model_seed"] = Value(int64_t{3});
  const serde::Bytes wire2 =
      serde::dumps(apps::drugscreen::inference_task(Value(std::move(args2))));
  const Value result = serde::loads(wire2);
  const double score = result.at("docking_score").as_real();
  EXPECT_GE(score, 0.0);
  EXPECT_LT(score, 1.0);
}

}  // namespace
}  // namespace lfm
