// Tests for the real LFM: fork/pipe execution, /proc measurement, limit
// enforcement, exception transport, crash reporting.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <ctime>
#include <thread>
#include <vector>

#include "monitor/lfm.h"
#include "monitor/proc_reader.h"
#include "serde/value.h"

namespace lfm::monitor {
namespace {

using serde::Value;
using serde::ValueDict;

TEST(Resources, FirstViolation) {
  ResourceUsage usage;
  usage.wall_time = 10.0;
  usage.max_rss_bytes = 500;
  ResourceLimits limits;
  EXPECT_FALSE(first_violation(usage, limits).has_value());
  EXPECT_TRUE(limits.unlimited());

  limits.wall_time = 5.0;
  ASSERT_TRUE(first_violation(usage, limits).has_value());
  EXPECT_EQ(*first_violation(usage, limits), "wall_time");

  limits.wall_time.reset();
  limits.memory_bytes = 400;
  EXPECT_EQ(*first_violation(usage, limits), "memory");

  usage.max_rss_bytes = 100;
  EXPECT_FALSE(first_violation(usage, limits).has_value());
}

TEST(Resources, SummaryMentionsKeyFields) {
  ResourceUsage usage;
  usage.wall_time = 1.5;
  usage.max_rss_bytes = 1000000;
  const std::string s = usage.summary();
  EXPECT_NE(s.find("wall="), std::string::npos);
  EXPECT_NE(s.find("rss_peak="), std::string::npos);
}

TEST(ProcReader, SampleSelf) {
  const auto sample = sample_process(::getpid());
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->pid, ::getpid());
  EXPECT_GT(sample->rss_bytes, 0);
  EXPECT_GE(sample->utime + sample->stime, 0.0);
}

TEST(ProcReader, SampleMissingProcess) {
  // PID near the max is almost certainly unused.
  EXPECT_FALSE(sample_process(4194000).has_value());
}

TEST(ProcReader, SubtreeContainsSelf) {
  const auto tree = process_subtree(::getpid());
  bool found = false;
  for (const pid_t pid : tree) {
    if (pid == ::getpid()) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ProcReader, SubtreeAggregation) {
  const ResourceUsage usage = sample_subtree(::getpid(), 2.0);
  EXPECT_DOUBLE_EQ(usage.wall_time, 2.0);
  EXPECT_GT(usage.rss_bytes, 0);
  EXPECT_GE(usage.processes, 1);
}

// --- run_monitored ------------------------------------------------------------

TEST(Lfm, SuccessReturnsValue) {
  const auto outcome = run_monitored(
      [](const Value& args) {
        return Value(args.at("x").as_int() * 2);
      },
      Value(ValueDict{{"x", Value(21)}}));
  ASSERT_EQ(outcome.status, TaskStatus::kSuccess);
  EXPECT_EQ(outcome.result.as_int(), 42);
  EXPECT_GT(outcome.usage.wall_time, 0.0);
}

TEST(Lfm, ResultSurvivesChildMemoryIsolation) {
  // Mutations in the child must not leak back: copy-on-write semantics.
  static int global_counter = 0;
  const auto outcome = run_monitored(
      [](const Value&) {
        global_counter = 999;  // visible only in the child
        return Value(global_counter);
      },
      Value());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.result.as_int(), 999);
  EXPECT_EQ(global_counter, 0);  // parent state untouched
}

TEST(Lfm, ExceptionTransported) {
  const auto outcome = run_monitored(
      [](const Value&) -> Value { throw std::runtime_error("task exploded"); },
      Value());
  EXPECT_EQ(outcome.status, TaskStatus::kException);
  EXPECT_NE(outcome.error.find("task exploded"), std::string::npos);
}

TEST(Lfm, LfmErrorTransported) {
  const auto outcome = run_monitored(
      [](const Value& v) -> Value { return Value(v.at("missing")); }, Value(ValueDict{}));
  EXPECT_EQ(outcome.status, TaskStatus::kException);
  EXPECT_NE(outcome.error.find("missing"), std::string::npos);
}

TEST(Lfm, CrashDetected) {
  const auto outcome = run_monitored(
      [](const Value&) -> Value { ::_exit(3); }, Value());
  EXPECT_EQ(outcome.status, TaskStatus::kCrashed);
  EXPECT_FALSE(outcome.error.empty());
}

TEST(Lfm, WallTimeLimitKillsTask) {
  MonitorOptions options;
  options.limits.wall_time = 0.15;
  options.poll_interval = 0.02;
  const auto start = std::chrono::steady_clock::now();
  const auto outcome = run_monitored(
      [](const Value&) {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return Value(1);
      },
      Value(), options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_EQ(outcome.status, TaskStatus::kLimitExceeded);
  EXPECT_EQ(outcome.violated_resource, "wall_time");
  EXPECT_LT(elapsed, 10.0);  // killed long before the sleep finished
}

TEST(Lfm, MemoryLimitKillsHog) {
  MonitorOptions options;
  options.limits.memory_bytes = 48LL << 20;  // 48 MiB
  options.poll_interval = 0.01;
  const auto outcome = run_monitored(
      [](const Value&) {
        std::vector<std::string> hoard;
        for (int i = 0; i < 100000; ++i) {
          hoard.emplace_back(1 << 20, 'x');
          // Touch the pages so RSS actually grows.
          for (size_t j = 0; j < hoard.back().size(); j += 4096) hoard.back()[j] = 'y';
        }
        return Value(1);
      },
      Value(), options);
  EXPECT_EQ(outcome.status, TaskStatus::kLimitExceeded);
  EXPECT_EQ(outcome.violated_resource, "memory");
  EXPECT_GT(outcome.usage.max_rss_bytes, 48LL << 20);
}

TEST(Lfm, PollCallbackInvoked) {
  MonitorOptions options;
  options.poll_interval = 0.01;
  int polls = 0;
  options.on_poll = [&polls](const ResourceUsage& u) {
    ++polls;
    EXPECT_GE(u.wall_time, 0.0);
  };
  const auto outcome = run_monitored(
      [](const Value&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        return Value(1);
      },
      Value(), options);
  EXPECT_TRUE(outcome.ok());
  EXPECT_GE(polls, 2);
}

TEST(Lfm, MeasuresCpuBoundWork) {
  MonitorOptions options;
  options.poll_interval = 0.01;
  const auto outcome = run_monitored(
      [](const Value&) {
        // Spin until the process has consumed a fixed amount of CPU time
        // (not wall time): under a loaded test machine a wall-clocked spin
        // can be descheduled for most of its window and burn too little CPU
        // for the assertions below.
        volatile double sink = 0.0;
        const auto cpu_now = [] {
          return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
        };
        const double cpu0 = cpu_now();
        while (cpu_now() - cpu0 < 0.1) {
          for (int i = 1; i < 5000; ++i) sink += 1.0 / i;
        }
        return Value(sink);
      },
      Value(), options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome.usage.cpu_time, 0.05);
}

TEST(Lfm, TracksChildProcessesOfTask) {
  // A task that forks its own child: the subtree scan must see the combined
  // process count.
  MonitorOptions options;
  options.poll_interval = 0.01;
  int max_procs = 0;
  options.on_poll = [&max_procs](const ResourceUsage& u) {
    max_procs = std::max(max_procs, u.processes);
  };
  const auto outcome = run_monitored(
      [](const Value&) {
        const pid_t child = ::fork();
        if (child == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
          ::_exit(0);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        return Value(1);
      },
      Value(), options);
  EXPECT_TRUE(outcome.ok());
  EXPECT_GE(max_procs, 2);
}

TEST(Lfm, LargeResultPayload) {
  // Results bigger than the pipe buffer must still arrive intact.
  const auto outcome = run_monitored(
      [](const Value&) {
        serde::ValueList big;
        for (int i = 0; i < 50000; ++i) big.push_back(Value(int64_t{i}));
        return Value(std::move(big));
      },
      Value());
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.result.as_list().size(), 50000u);
  EXPECT_EQ(outcome.result.as_list()[49999].as_int(), 49999);
}

TEST(Lfm, MonitoredDecoratorBindsOptions) {
  MonitorOptions options;
  options.limits.wall_time = 60.0;
  const Monitored wrapped([](const Value& v) { return Value(v.as_int() + 1); }, options);
  const auto outcome = wrapped(Value(41));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.result.as_int(), 42);
  EXPECT_EQ(wrapped.options().limits.wall_time, 60.0);
}

TEST(Lfm, StatusNames) {
  EXPECT_STREQ(task_status_name(TaskStatus::kSuccess), "success");
  EXPECT_STREQ(task_status_name(TaskStatus::kException), "exception");
  EXPECT_STREQ(task_status_name(TaskStatus::kLimitExceeded), "limit_exceeded");
  EXPECT_STREQ(task_status_name(TaskStatus::kCrashed), "crashed");
}

TEST(Lfm, SequentialInvocationsIndependent) {
  for (int i = 0; i < 5; ++i) {
    const auto outcome =
        run_monitored([](const Value& v) { return Value(v.as_int() * v.as_int()); },
                      Value(int64_t{i}));
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.result.as_int(), i * i);
  }
}

}  // namespace
}  // namespace lfm::monitor
