// Property-based tests (parameterized sweeps) on the core invariants:
//   * pickle round-trips arbitrary generated values byte-exactly
//   * tar round-trips arbitrary archives
//   * the solver's output is closed, version-consistent, and minimal-rooted
//   * the labeler never emits an allocation exceeding the node and never
//     livelocks (whole-node retry always succeeds)
//   * the master conserves tasks and never oversubscribes a worker
//   * canonicalize_smiles is idempotent on random molecules
#include <gtest/gtest.h>

#include "apps/drugscreen.h"
#include "pkg/index.h"
#include "pkg/packer.h"
#include "pkg/solver.h"
#include "serde/pickle.h"
#include "util/rng.h"
#include "wq/master.h"

namespace lfm {
namespace {

// --- pickle round-trip over random value trees --------------------------------

serde::Value random_value(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.uniform_int(0, depth > 3 ? 5 : 7));
  switch (kind) {
    case 0: return serde::Value();
    case 1: return serde::Value(rng.chance(0.5));
    case 2: return serde::Value(static_cast<int64_t>(rng.next()));
    case 3: return serde::Value(rng.normal(0.0, 1e6));
    case 4: {
      std::string s;
      const int len = static_cast<int>(rng.uniform_int(0, 40));
      for (int i = 0; i < len; ++i) s += static_cast<char>(rng.uniform_int(32, 126));
      return serde::Value(std::move(s));
    }
    case 5: {
      serde::Bytes b;
      const int len = static_cast<int>(rng.uniform_int(0, 64));
      for (int i = 0; i < len; ++i) b.push_back(static_cast<uint8_t>(rng.next()));
      return serde::Value(std::move(b));
    }
    case 6: {
      serde::ValueList l;
      const int len = static_cast<int>(rng.uniform_int(0, 6));
      for (int i = 0; i < len; ++i) l.push_back(random_value(rng, depth + 1));
      return serde::Value(std::move(l));
    }
    default: {
      serde::ValueDict d;
      const int len = static_cast<int>(rng.uniform_int(0, 6));
      for (int i = 0; i < len; ++i) {
        d["k" + std::to_string(i)] = random_value(rng, depth + 1);
      }
      return serde::Value(std::move(d));
    }
  }
}

class PickleRoundtrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PickleRoundtrip, RandomValueTreeSurvives) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const serde::Value v = random_value(rng, 0);
    const serde::Bytes wire = serde::dumps(v);
    EXPECT_EQ(wire.size(), serde::encoded_size(v));
    EXPECT_EQ(serde::loads(wire), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PickleRoundtrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- tar round-trip over random archives ---------------------------------------

class TarRoundtrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TarRoundtrip, RandomArchiveSurvives) {
  Rng rng(GetParam());
  pkg::Archive archive;
  const int entries = static_cast<int>(rng.uniform_int(1, 20));
  for (int i = 0; i < entries; ++i) {
    if (rng.chance(0.2)) {
      archive.add_directory("dir" + std::to_string(i));
      continue;
    }
    pkg::Bytes data;
    const int len = static_cast<int>(rng.uniform_int(0, 3000));
    for (int j = 0; j < len; ++j) data.push_back(static_cast<uint8_t>(rng.next()));
    archive.add_file("path/to/file" + std::to_string(i) + ".bin", std::move(data),
                     rng.chance(0.5) ? 0644 : 0755);
  }
  const pkg::Archive back = pkg::read_tar(pkg::write_tar(archive));
  ASSERT_EQ(back.entries().size(), archive.entries().size());
  for (size_t i = 0; i < archive.entries().size(); ++i) {
    EXPECT_EQ(back.entries()[i].path, archive.entries()[i].path);
    EXPECT_EQ(back.entries()[i].data, archive.entries()[i].data);
    EXPECT_EQ(back.entries()[i].is_directory, archive.entries()[i].is_directory);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TarRoundtrip, ::testing::Range<uint64_t>(100, 112));

// --- solver closure invariants --------------------------------------------------

class SolverClosure : public ::testing::TestWithParam<const char*> {};

TEST_P(SolverClosure, ResolutionIsClosedAndConsistent) {
  const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  const auto result = solver.resolve({pkg::Requirement::parse(GetParam())});
  ASSERT_TRUE(result.ok()) << result.error();
  const auto& packages = result.value().packages;

  // Root present.
  EXPECT_TRUE(packages.count(GetParam()));
  for (const auto& [name, meta] : packages) {
    EXPECT_EQ(meta->name, name);
    for (const auto& dep : meta->depends) {
      // Closure: every dependency is in the set...
      ASSERT_TRUE(packages.count(dep.name))
          << name << " depends on missing " << dep.name;
      // ...at a version satisfying the constraint.
      EXPECT_TRUE(dep.spec.matches(packages.at(dep.name)->version))
          << name << " -> " << dep.str() << " got "
          << packages.at(dep.name)->version.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, SolverClosure,
                         ::testing::Values("numpy", "scipy", "pandas",
                                           "scikit-learn", "matplotlib",
                                           "tensorflow", "mxnet", "coffea",
                                           "candle-drugscreen",
                                           "gdc-dnaseq-pipeline", "parsl",
                                           "funcx"));

// --- labeler invariants -----------------------------------------------------------

class LabelerInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LabelerInvariants, AllocationsNeverExceedNodeAndRetryTerminates) {
  Rng rng(GetParam());
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{8, 8e9, 16e9};
  cfg.guess = alloc::Resources{1, 1e9, 1e9};
  cfg.strategy = alloc::Strategy::kAuto;
  cfg.warmup_samples = 2;
  alloc::CategoryLabeler labeler(cfg);

  for (int i = 0; i < 300; ++i) {
    // Feed arbitrary observations, including nonsense-heavy ones.
    const alloc::Resources peak{rng.uniform(0.1, 8.0), rng.uniform(1e6, 8e9),
                                rng.uniform(1e6, 16e9)};
    if (rng.chance(0.2)) {
      labeler.observe_exhaustion(labeler.allocation(0),
                                 rng.chance(0.5) ? "memory" : "disk");
    } else {
      labeler.observe_success(peak);
    }
    for (const int attempt : {0, 1, 2}) {
      const alloc::Resources a = labeler.allocation(attempt);
      EXPECT_TRUE(a.fits_in(cfg.whole_node));
      EXPECT_TRUE(a.nonnegative());
      EXPECT_GE(a.cores, 1.0);
      if (attempt >= 1) {
        // Retry escalates to the whole node: any task that fits the node
        // at all succeeds on attempt 1 -> no livelock.
        EXPECT_DOUBLE_EQ(a.memory_bytes, cfg.whole_node.memory_bytes);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelerInvariants,
                         ::testing::Values(7, 11, 13, 17, 19, 23));

// --- master conservation ----------------------------------------------------------

class MasterConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MasterConservation, TasksConservedAndWorkersNeverOversubscribed) {
  Rng rng(GetParam());
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{8, 8e9, 16e9};
  cfg.guess = alloc::Resources{2, 2e9, 3e9};
  cfg.strategy = rng.chance(0.5) ? alloc::Strategy::kAuto : alloc::Strategy::kGuess;
  cfg.warmup_samples = 2;
  alloc::Labeler labeler(cfg);

  sim::Simulation sim;
  sim::Network net(sim, {});
  wq::Master master(sim, net, labeler);
  const int n_workers = static_cast<int>(rng.uniform_int(1, 5));
  for (int w = 0; w < n_workers; ++w) {
    master.add_worker({cfg.whole_node, rng.uniform(0.0, 5.0)});
  }
  const int n_tasks = static_cast<int>(rng.uniform_int(5, 60));
  for (int i = 0; i < n_tasks; ++i) {
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    t.category = rng.chance(0.5) ? "a" : "b";
    t.exec_seconds = rng.uniform(0.5, 20.0);
    t.true_cores = rng.uniform(0.5, 4.0);
    t.true_peak = alloc::Resources{t.true_cores, rng.uniform(1e8, 6e9),
                                   rng.uniform(1e8, 10e9)};
    t.peak_fraction = rng.uniform(0.2, 0.95);
    master.submit(std::move(t));
  }
  const wq::MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed + stats.tasks_failed, n_tasks);
  // Every record reached a terminal state with sane timestamps.
  for (const auto& rec : master.records()) {
    EXPECT_EQ(rec.state, wq::TaskState::kDone);
    if (rec.finish_time >= 0.0) {
      EXPECT_GE(rec.finish_time, rec.start_time);
      EXPECT_GE(rec.start_time, rec.submit_time);
    }
  }
  EXPECT_LE(stats.utilization(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MasterConservation,
                         ::testing::Range<uint64_t>(40, 56));

// --- smiles idempotence -------------------------------------------------------------

class SmilesIdempotence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmilesIdempotence, CanonicalFormIsFixedPoint) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const std::string s =
        apps::drugscreen::random_smiles(rng.next(), static_cast<int>(rng.uniform_int(3, 30)));
    const std::string once = apps::drugscreen::canonicalize_smiles(s);
    const std::string twice = apps::drugscreen::canonicalize_smiles(once);
    EXPECT_EQ(once, twice) << "input: " << s;
    // Fingerprints of canonical forms are stable under re-canonicalization.
    EXPECT_EQ(apps::drugscreen::fingerprint(once), apps::drugscreen::fingerprint(twice));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmilesIdempotence, ::testing::Values(3, 6, 9, 12));

// --- histogram/quantile coherence -----------------------------------------------------

class HistogramQuantiles : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramQuantiles, QuantileBoundsMassBelow) {
  Rng rng(GetParam());
  Histogram h(1.0, 100);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0.0, 100.0);
    values.push_back(v);
    h.add(v);
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double cut = h.quantile(q);
    int below = 0;
    for (const double v : values) {
      if (v <= cut) ++below;
    }
    // At least a q-fraction of the mass lies at or below the quantile.
    EXPECT_GE(static_cast<double>(below) / 500.0, q - 1e-9) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramQuantiles, ::testing::Values(2, 4, 6, 8));

}  // namespace
}  // namespace lfm
