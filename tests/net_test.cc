// Tests for the TCP transport runtime (src/net/): frame reassembly under
// adversarial fragmentation, the epoll event loop, connection plumbing, and
// an end-to-end master<->worker-process run over real loopback sockets with
// an injected connection drop.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/conn.h"
#include "net/event_loop.h"
#include "obs/collector.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "net/framing.h"
#include "net/master_service.h"
#include "net/socket.h"
#include "net/worker_client.h"
#include "serde/json.h"
#include "serde/pickle.h"
#include "util/error.h"
#include "wq/protocol.h"
#include "wq/worker.h"

namespace lfm::net {
namespace {

wq::TaskMessage simple_task(uint64_t id) {
  wq::TaskMessage t;
  t.task_id = id;
  t.category = "net-test";
  t.command_line = "exit 0";
  t.allocation = alloc::Resources{1.0, 512e6, 1e9};
  return t;
}

std::vector<std::string> split_all(FrameSplitter& splitter) {
  std::vector<std::string> out;
  std::string message;
  while (splitter.next(message)) out.push_back(message);
  return out;
}

// --- FrameSplitter -----------------------------------------------------------

TEST(FrameSplitter, OneByteDripV2) {
  const std::string wire = wq::encode(simple_task(7), wq::WireVersion::kV2);
  FrameSplitter splitter;
  std::string message;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    splitter.feed(wire.data() + i, 1);
    EXPECT_FALSE(splitter.next(message)) << "complete at byte " << i;
  }
  splitter.feed(wire.data() + wire.size() - 1, 1);
  ASSERT_TRUE(splitter.next(message));
  EXPECT_EQ(message, wire);
  EXPECT_EQ(splitter.buffered(), 0u);
  EXPECT_FALSE(splitter.next(message));
}

TEST(FrameSplitter, OneByteDripV1) {
  const std::string wire = wq::encode(simple_task(9), wq::WireVersion::kV1);
  FrameSplitter splitter;
  std::string message;
  for (const char c : wire) splitter.feed(&c, 1);
  ASSERT_TRUE(splitter.next(message));
  EXPECT_EQ(message, wire);
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(FrameSplitter, CoalescedMixedVersionsInOneFeed) {
  // Five messages of alternating dialects arriving as one TCP segment, the
  // per-message version re-detected from each first byte.
  wq::ResultMessage r;
  r.task_id = 3;
  r.payload = serde::Bytes{'e', 'n', 'd', '\n', 0xF7, 'Q', 2};  // traps naive scans
  const std::vector<std::string> wires = {
      wq::encode(simple_task(1), wq::WireVersion::kV2),
      wq::encode(simple_task(2), wq::WireVersion::kV1),
      wq::encode(r, wq::WireVersion::kV2),
      wq::encode_batch(std::vector<wq::TaskMessage>{simple_task(4), simple_task(5)},
                       wq::WireVersion::kV2),
      wq::encode(wq::ControlMessage{wq::ControlType::kPing, 1, 2.5},
                 wq::WireVersion::kV1),
  };
  std::string stream;
  for (const std::string& w : wires) stream += w;
  FrameSplitter splitter;
  splitter.feed(stream);
  const std::vector<std::string> out = split_all(splitter);
  ASSERT_EQ(out.size(), wires.size());
  for (size_t i = 0; i < wires.size(); ++i) EXPECT_EQ(out[i], wires[i]);
  EXPECT_EQ(splitter.buffered(), 0u);
}

TEST(FrameSplitter, FragmentBoundaryInsideHeader) {
  // Split inside the 4-byte fixed header and inside the length varint.
  const std::string wire = wq::encode(simple_task(11), wq::WireVersion::kV2);
  for (size_t cut = 1; cut < 6 && cut < wire.size(); ++cut) {
    FrameSplitter splitter;
    std::string message;
    splitter.feed(wire.data(), cut);
    EXPECT_FALSE(splitter.next(message));
    splitter.feed(wire.data() + cut, wire.size() - cut);
    ASSERT_TRUE(splitter.next(message)) << "cut at " << cut;
    EXPECT_EQ(message, wire);
  }
}

TEST(FrameSplitter, OversizedV2LengthRejectedFromHeaderAlone) {
  // 2^62-byte claimed body: must throw once the varint completes, without
  // waiting for (or buffering) any body bytes.
  const std::string header{'\xF7', 'Q', 2, 1,
                           '\xFF', '\xFF', '\xFF', '\xFF', '\xFF',
                           '\xFF', '\xFF', '\xFF', '\x3F'};
  FrameSplitter splitter;
  std::string message;
  EXPECT_THROW(
      {
        splitter.feed(header);
        splitter.next(message);
      },
      Error);
}

TEST(FrameSplitter, OversizedV1MessageRejected) {
  wq::set_max_frame_body_bytes(1024);
  FrameSplitter splitter;
  std::string message;
  const std::string line = "task 1 cat\n";  // never an "end" line
  EXPECT_THROW(
      {
        // The cap allows base64/overhead slack above the configured limit;
        // feed well past it.
        for (int i = 0; i < 2000; ++i) {
          splitter.feed(line);
          splitter.next(message);
        }
      },
      Error);
  wq::set_max_frame_body_bytes(0);
}

TEST(FrameSplitter, ManySmallMessagesUnderLimitPass) {
  // The v1 cap applies per message, not to the connection's total traffic.
  wq::set_max_frame_body_bytes(4096);
  FrameSplitter splitter;
  const std::string wire = wq::encode(wq::ControlMessage{}, wq::WireVersion::kV1);
  size_t delivered = 0;
  std::string message;
  for (int i = 0; i < 500; ++i) {
    splitter.feed(wire);
    while (splitter.next(message)) ++delivered;
  }
  EXPECT_EQ(delivered, 500u);
  wq::set_max_frame_body_bytes(0);
}

// --- EventLoop ---------------------------------------------------------------

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.run_after(0.03, [&] { order.push_back(3); });
  loop.run_after(0.01, [&] { order.push_back(1); });
  loop.run_after(0.02, [&] {
    order.push_back(2);
    loop.run_after(0.02, [&] {
      order.push_back(4);
      loop.stop();
    });
  });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  bool fired = false;
  const uint64_t id = loop.run_after(0.01, [&] { fired = true; });
  loop.cancel_timer(id);
  loop.run_after(0.03, [&] { loop.stop(); });
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, RunEveryRepeatsUntilCancelled) {
  EventLoop loop;
  int fires = 0;
  uint64_t id = 0;
  id = loop.run_every(0.01, [&] {
    if (++fires == 3) {
      loop.cancel_timer(id);
      loop.run_after(0.03, [&] { loop.stop(); });
    }
  });
  loop.run();
  EXPECT_EQ(fires, 3);
}

TEST(EventLoop, PostFromAnotherThreadWakesLoop) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    loop.post([&] {
      ran.store(true);
      loop.stop();
    });
  });
  loop.run();
  poster.join();
  EXPECT_TRUE(ran.load());
}

// --- Connection / Listener ---------------------------------------------------

TEST(Connection, EchoAcrossRealSockets) {
  EventLoop loop;
  Listener listener(loop, 0);
  std::vector<std::shared_ptr<Connection>> server_conns;
  listener.set_on_accept([&](int fd) {
    auto conn = std::make_shared<Connection>(loop, fd, 100);
    conn->set_on_message(
        [](Connection& c, std::string&& wire) { c.send(std::move(wire)); });
    server_conns.push_back(conn);
    conn->start();
  });
  listener.start();

  const int fd = connect_tcp("127.0.0.1", listener.port());
  ASSERT_GE(fd, 0);
  auto client = std::make_shared<Connection>(loop, fd, 1);
  std::vector<std::string> echoed;
  const std::vector<std::string> sent = {
      wq::encode(simple_task(1), wq::WireVersion::kV2),
      wq::encode(simple_task(2), wq::WireVersion::kV1),
      wq::encode(wq::ControlMessage{}, wq::WireVersion::kV2),
  };
  client->set_on_message([&](Connection&, std::string&& wire) {
    echoed.push_back(std::move(wire));
    if (echoed.size() == sent.size()) loop.stop();
  });
  client->start();
  for (const std::string& w : sent) client->send(w);
  loop.run_after(5.0, [&] { loop.stop(); });  // watchdog
  loop.run();
  EXPECT_EQ(echoed, sent);
  EXPECT_EQ(client->messages_out(), 3);
  EXPECT_EQ(client->messages_in(), 3);
  client->close("test done");
}

TEST(Connection, MidFrameEofReportedAsSuch) {
  EventLoop loop;
  Listener listener(loop, 0);
  std::string close_reason;
  std::shared_ptr<Connection> server;
  listener.set_on_accept([&](int fd) {
    server = std::make_shared<Connection>(loop, fd, 100);
    server->set_on_close([&](Connection&, const std::string& reason) {
      close_reason = reason;
      loop.stop();
    });
    server->start();
  });
  listener.start();

  const int fd = connect_tcp("127.0.0.1", listener.port());
  ASSERT_GE(fd, 0);
  // A v2 header promising 100 body bytes, then only 4, then close.
  const std::string partial{'\xF7', 'Q', 2, 1, 100, 'a', 'b', 'c', 'd'};
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  ::close(fd);
  loop.run_after(5.0, [&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(close_reason, "mid-frame eof");
}

TEST(Connection, ProtocolErrorClosesWithDecoderMessage) {
  EventLoop loop;
  Listener listener(loop, 0);
  std::string close_reason;
  std::shared_ptr<Connection> server;
  listener.set_on_accept([&](int fd) {
    server = std::make_shared<Connection>(loop, fd, 100);
    server->set_on_close([&](Connection&, const std::string& reason) {
      close_reason = reason;
      loop.stop();
    });
    server->start();
  });
  listener.start();

  const int fd = connect_tcp("127.0.0.1", listener.port());
  ASSERT_GE(fd, 0);
  const std::string hostile{'\xF7', 'Q', 2, 1,
                            '\xFF', '\xFF', '\xFF', '\xFF', '\xFF',
                            '\xFF', '\xFF', '\xFF', '\x3F'};
  ASSERT_EQ(::send(fd, hostile.data(), hostile.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(hostile.size()));
  loop.run_after(5.0, [&] { loop.stop(); });
  loop.run();
  ::close(fd);
  EXPECT_NE(close_reason.find("exceeds"), std::string::npos);
}

// --- end-to-end: master process <-> forked worker processes ------------------

pid_t fork_worker(uint16_t port, const std::string& name,
                  wq::WireVersion version) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Drop inherited fds: a surviving copy of the master's listener keeps
  // its port accepting after the run drains (see net/socket.h).
  close_inherited_fds();
  int status = 1;
  try {
    WorkerClientOptions options;
    options.host = "127.0.0.1";
    options.port = port;
    options.name = name;
    options.wire_version = version;
    options.worker.poll_interval = 0.01;
    WorkerClient client(options);
    client.run();
    status = 0;
  } catch (...) {
  }
  _exit(status);
}

TEST(NetEndToEnd, PythonTasksMatchInProcessExecutionBitForBit) {
  const char* module = R"(
def mix(a, b):
    return {'sum': a + b, 'prod': a * b}
)";
  const int kTasks = 12;
  std::vector<std::pair<wq::TaskMessage, wq::FileSet>> specs;
  for (int i = 0; i < kTasks; ++i) {
    serde::ValueList args;
    args.push_back(serde::Value(int64_t{i}));
    args.push_back(serde::Value(int64_t{1000 + i}));
    specs.push_back(wq::make_python_task(100 + static_cast<uint64_t>(i), "mix",
                                         module, "mix",
                                         serde::Value(std::move(args)),
                                         alloc::Resources{1.0, 512e6, 1e9}));
  }
  // Reference run: the same messages through an in-process LocalWorker.
  std::vector<serde::Bytes> expected;
  {
    wq::LocalWorkerOptions wo;
    wo.poll_interval = 0.01;
    wq::LocalWorker direct(wo);
    for (const auto& [task, files] : specs) {
      const wq::ResultMessage r = direct.execute(task, files);
      ASSERT_EQ(r.exit_code, 0) << "task " << task.task_id;
      expected.push_back(r.payload);
    }
  }

  EventLoop loop;
  MasterServiceConfig config;
  config.tasks_per_worker = 4;
  MasterService master(loop, config);
  for (auto& [task, files] : specs) master.submit(task, files);

  // Two v2 workers and two v1 workers: version negotiation is live.
  std::vector<pid_t> workers;
  workers.push_back(fork_worker(master.port(), "w2a", wq::WireVersion::kV2));
  workers.push_back(fork_worker(master.port(), "w2b", wq::WireVersion::kV2));
  workers.push_back(fork_worker(master.port(), "w1a", wq::WireVersion::kV1));
  workers.push_back(fork_worker(master.port(), "w1b", wq::WireVersion::kV1));

  std::map<uint64_t, int> results_per_task;
  master.set_on_result([&](const wq::ResultMessage& r) {
    results_per_task[r.task_id] += 1;
  });
  const NetMasterStats stats = master.run_until_complete(120.0);

  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_EQ(results_per_task.size(), static_cast<size_t>(kTasks));
  for (const auto& [id, n] : results_per_task) {
    EXPECT_EQ(n, 1) << "task " << id << " reported " << n << " times";
  }
  const std::vector<wq::ResultMessage>& results = master.results();
  ASSERT_EQ(results.size(), static_cast<size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[i].exit_code, 0);
    EXPECT_EQ(results[i].payload, expected[i])
        << "payload differs for task " << results[i].task_id;
  }
  EXPECT_GE(stats.connections_accepted, 4);
  for (const pid_t pid : workers) {
    int status = -1;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
}

TEST(NetEndToEnd, DroppedConnectionRequeuesAndReconnects) {
  // One worker, four slow tasks dispatched as a batch. Dropping the
  // connection mid-execution loses the in-flight batch; the worker must
  // reconnect (chaos::RetryPolicy backoff) and the master must re-dispatch
  // every task, completing all of them exactly once.
  EventLoop loop;
  MasterService master(loop, {});
  const int kTasks = 4;
  for (int i = 0; i < kTasks; ++i) {
    wq::TaskMessage t = simple_task(200 + static_cast<uint64_t>(i));
    t.command_line = "sleep 0.15";
    master.submit(t);
  }
  const pid_t worker = fork_worker(master.port(), "flaky", wq::WireVersion::kV2);
  bool dropped = false;
  loop.run_after(0.25, [&] { dropped = master.drop_connection(0); });

  int result_events = 0;
  master.set_on_result([&](const wq::ResultMessage&) { ++result_events; });
  const NetMasterStats stats = master.run_until_complete(120.0);

  EXPECT_TRUE(dropped);
  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_EQ(result_events, kTasks);
  // The whole in-flight batch came back to the queue...
  EXPECT_GE(stats.requeued_tasks, 1);
  // ...and the worker came back to the master.
  EXPECT_GE(stats.connections_accepted, 2);
  int status = -1;
  ASSERT_EQ(waitpid(worker, &status, 0), worker);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// --- relay framing: the foreman hop must be a bit-transparent re-framer ------
// A fed::Foreman decodes batches off its root link, re-batches, and encodes
// toward its workers (and the reverse for results). These tests pin the
// invariant that hop depends on: decode(encode(x)) re-encodes to the exact
// same bytes, even when the inbound stream arrives one byte at a time or
// with an EOF in the middle of a frame.

wq::TaskMessage rich_task(uint64_t id) {
  wq::TaskMessage t;
  t.task_id = id;
  t.category = "relay-hop";
  t.command_line = "python lfm_wrapper.py fn.pkl args.pkl --seed 42";
  t.allocation = alloc::Resources{2.0, 1.5e9, 7e9};
  t.infiles.push_back({"fn.pkl", 1833, true});
  t.infiles.push_back({"args-" + std::to_string(id) + ".pkl", 96, false});
  t.outfiles.push_back("out-" + std::to_string(id) + ".pkl");
  return t;
}

TEST(RelayFraming, TaskBatchSurvivesDripFedRelayHopBitIdentical) {
  std::vector<wq::TaskMessage> tasks;
  for (uint64_t id = 40; id < 47; ++id) tasks.push_back(rich_task(id));
  const std::string wire = wq::encode_batch(tasks, wq::WireVersion::kV2);

  // Relay ingress: the root-link stream drips in one byte at a time.
  FrameSplitter splitter;
  std::vector<std::string> messages;
  for (char c : wire) {
    splitter.feed(&c, 1);
    std::string m;
    while (splitter.next(m)) messages.push_back(std::move(m));
  }
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(splitter.buffered(), 0u);
  EXPECT_EQ(messages[0], wire);

  // Relay egress: decode, re-batch, re-encode toward the shard's workers.
  const std::vector<wq::TaskMessage> decoded =
      wq::decode_task_batch(messages[0]);
  ASSERT_EQ(decoded.size(), tasks.size());
  EXPECT_EQ(wq::encode_batch(decoded, wq::WireVersion::kV2), wire);
}

TEST(RelayFraming, ResultBatchWithHostilePayloadRelaysBitIdentical) {
  // Payload bytes chosen to look like framing: the v2 magic pair, a v1
  // "end" terminator line, NULs and LFs. The relay must treat them as
  // opaque body bytes at every hop.
  std::vector<wq::ResultMessage> results;
  for (int i = 0; i < 5; ++i) {
    wq::ResultMessage r;
    r.task_id = 60 + static_cast<uint64_t>(i);
    r.exit_code = i == 3 ? 137 : 0;
    r.exhausted = i == 3;
    if (i == 3) r.exhausted_resource = "memory";
    r.cores_used = 1.75;
    r.memory_peak_bytes = 123456789 + i;
    r.disk_peak_bytes = 987654321;
    r.wall_seconds = 0.25 * i;
    const std::string hostile = std::string("\xF7Q\x02\x01") + '\0' +
                                "\nend\nresult 9 0\n" + '\0' + "\xF7Q";
    r.payload.assign(hostile.begin(), hostile.end());
    r.payload.push_back(static_cast<uint8_t>(i));
    results.push_back(std::move(r));
  }
  const std::string wire = wq::encode_batch(results, wq::WireVersion::kV2);

  FrameSplitter splitter;
  std::vector<std::string> messages;
  for (char c : wire) {
    splitter.feed(&c, 1);
    std::string m;
    while (splitter.next(m)) messages.push_back(std::move(m));
  }
  ASSERT_EQ(messages.size(), 1u);
  ASSERT_EQ(messages[0], wire);

  const std::vector<wq::ResultMessage> decoded =
      wq::decode_result_batch(messages[0]);
  ASSERT_EQ(decoded.size(), results.size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].payload, results[i].payload) << "result " << i;
  }
  EXPECT_EQ(wq::encode_batch(decoded, wq::WireVersion::kV2), wire);
}

TEST(RelayFraming, MidFrameEofAtRelayHopKeepsPartialBufferedThenCompletes) {
  const std::string wire = wq::encode_batch(
      std::vector<wq::TaskMessage>{rich_task(70), rich_task(71)},
      wq::WireVersion::kV2);
  // The upstream link stalls (or dies) with the frame split anywhere at
  // all: no partial message may ever be surfaced, and the buffered byte
  // count must expose the dirtiness of an EOF at that point.
  for (size_t cut : {size_t{1}, size_t{3}, size_t{5}, wire.size() / 2,
                     wire.size() - 1}) {
    FrameSplitter splitter;
    splitter.feed(wire.data(), cut);
    std::string m;
    EXPECT_FALSE(splitter.next(m)) << "cut at " << cut;
    EXPECT_EQ(splitter.buffered(), cut) << "cut at " << cut;
    // The peer recovers and sends the rest: the reassembled message is
    // byte-identical to an unfragmented delivery.
    splitter.feed(wire.data() + cut, wire.size() - cut);
    ASSERT_TRUE(splitter.next(m)) << "cut at " << cut;
    EXPECT_EQ(m, wire) << "cut at " << cut;
    EXPECT_EQ(splitter.buffered(), 0u);
    EXPECT_EQ(wq::encode_batch(wq::decode_task_batch(m), wq::WireVersion::kV2),
              wire);
  }
}

// --- reconnect budget semantics ---------------------------------------------

TEST(WorkerClient, AcceptThenDropFlappingMasterExhaustsBudget) {
  // A "master" that accepts every connection and immediately hangs up — a
  // crash-looping service or a misrouted port. The TCP accepts must NOT
  // replenish the reconnect budget (only completed tasks do), so the
  // client gives up instead of flapping forever.
  const int lfd = listen_tcp(0);
  const uint16_t port = local_port(lfd);
  std::atomic<bool> done{false};
  std::thread flapper([&] {
    while (!done.load()) {
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd >= 0) {
        ::close(fd);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  WorkerClientOptions options;
  options.host = "127.0.0.1";
  options.port = port;
  options.name = "flap-victim";
  options.max_reconnect_attempts = 3;
  chaos::RetryPolicy fast;
  fast.backoff_base = 0.001;
  fast.backoff_max = 0.005;
  options.reconnect = fast;
  options.idle_timeout = 0.25;  // safety net if the drop is never noticed
  WorkerClient client(options);
  const int64_t executed = client.run();  // must return, not hang or throw

  EXPECT_EQ(executed, 0);
  EXPECT_TRUE(client.gave_up());
  EXPECT_GE(client.failures_since_progress(), options.max_reconnect_attempts);
  done.store(true);
  flapper.join();
  ::close(lfd);
}

TEST(WorkerClient, TaskCompletionRestoresReconnectBudget) {
  // The flip side: a worker whose budget is tiny (2) survives five
  // injected disconnects because each completed task resets the count.
  // Without the reset, failures would accumulate across drops and the
  // worker would give up mid-run.
  EventLoop loop;
  MasterServiceConfig config;
  config.tasks_per_worker = 1;  // one task per dispatch: drop between tasks
  MasterService master(loop, config);
  const int kTasks = 6;
  for (int i = 0; i < kTasks; ++i) {
    master.submit(simple_task(300 + static_cast<uint64_t>(i)));
  }

  const pid_t pid = fork();
  if (pid == 0) {
    close_inherited_fds();
    int status = 1;
    try {
      WorkerClientOptions options;
      options.host = "127.0.0.1";
      options.port = master.port();
      options.name = "budget-2";
      options.max_reconnect_attempts = 2;
      chaos::RetryPolicy fast;
      fast.backoff_base = 0.001;
      fast.backoff_max = 0.005;
      options.reconnect = fast;
      options.worker.poll_interval = 0.01;
      WorkerClient client(options);
      client.run();
      status = client.gave_up() ? 2 : 0;
    } catch (...) {
    }
    _exit(status);
  }

  int results_seen = 0;
  master.set_on_result([&](const wq::ResultMessage&) {
    if (++results_seen < kTasks) master.drop_connection(0);
  });
  const NetMasterStats stats = master.run_until_complete(120.0);

  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_EQ(results_seen, kTasks);
  // Five drops, each answered by a fresh accept: 6 connections minimum,
  // which is strictly more than the budget of 2 — only the
  // completion-resets rule lets the worker get this far.
  EXPECT_GE(stats.connections_accepted, kTasks);
  int status = -1;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "worker exit status " << status;
}

// --- live telemetry endpoints -----------------------------------------------

// Blocking HTTP/1.0 fetch from a side thread while the loop serves; the
// thread stops the loop once the server closes the connection.
std::string http_get(EventLoop& loop, uint16_t port, const std::string& target,
                     const std::string& method = "GET") {
  std::string response;
  std::thread fetcher([&] {
    const int fd = connect_tcp("127.0.0.1", port);
    if (fd < 0) {
      loop.post([&loop] { loop.stop(); });
      return;
    }
    const std::string req =
        method + " " + target + " HTTP/1.0\r\nHost: test\r\n\r\n";
    size_t off = 0;
    while (off < req.size()) {
      const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
      response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    loop.post([&loop] { loop.stop(); });
  });
  const uint64_t watchdog = loop.run_after(10.0, [&] { loop.stop(); });
  loop.run();
  loop.cancel_timer(watchdog);
  fetcher.join();
  return response;
}

TEST(HttpEndpointTest, ServesMetricsHealthzAndStatusz) {
  EventLoop loop;
  obs::Metrics metrics;
  metrics.counter("net.results").add(42);
  metrics.gauge("net.write_queue_bytes").set(7.0);
  obs::HttpEndpointConfig hc;
  hc.metrics = &metrics;
  hc.statusz = [] {
    serde::ValueDict status;
    status["role"] = serde::Value(std::string("test-master"));
    status["pending"] = serde::Value(int64_t{3});
    return serde::Value(std::move(status));
  };
  obs::HttpEndpoint http(loop, hc);
  ASSERT_GT(http.port(), 0);

  const std::string metrics_rsp = http_get(loop, http.port(), "/metrics");
  EXPECT_NE(metrics_rsp.find("200"), std::string::npos);
  EXPECT_NE(metrics_rsp.find("net_results 42"), std::string::npos);
  EXPECT_NE(metrics_rsp.find("# TYPE"), std::string::npos);

  const std::string health_rsp = http_get(loop, http.port(), "/healthz");
  EXPECT_NE(health_rsp.find("200"), std::string::npos);
  EXPECT_NE(health_rsp.find("ok"), std::string::npos);

  const std::string status_rsp = http_get(loop, http.port(), "/statusz");
  EXPECT_NE(status_rsp.find("200"), std::string::npos);
  const size_t body_at = status_rsp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const serde::Value doc = serde::from_json(status_rsp.substr(body_at + 4));
  EXPECT_EQ(doc.as_dict().at("role").as_str(), "test-master");
  EXPECT_EQ(doc.as_dict().at("pending").as_int(), 3);

  EXPECT_NE(http_get(loop, http.port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(http_get(loop, http.port(), "/metrics", "POST").find("405"),
            std::string::npos);
  EXPECT_EQ(http.requests_served(), 5);
}

TEST(HttpEndpointTest, BindConflictThrowsInsteadOfTimingOut) {
  EventLoop loop;
  obs::HttpEndpointConfig hc;
  obs::HttpEndpoint first(loop, hc);
  obs::HttpEndpointConfig clash;
  clash.port = first.port();
  EXPECT_THROW(obs::HttpEndpoint(loop, clash), Error);
}

// --- distributed tracing: two processes, one timeline ------------------------

pid_t fork_traced_worker(uint16_t port, const std::string& name) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  close_inherited_fds();
  int status = 1;
  try {
    obs::Recorder::global().set_enabled(true);
    obs::Recorder::global().clear();
    WorkerClientOptions options;
    options.host = "127.0.0.1";
    options.port = port;
    options.name = name;
    options.worker.poll_interval = 0.01;
    WorkerClient client(options);
    client.run();
    status = 0;
  } catch (...) {
  }
  _exit(status);
}

TEST(NetEndToEnd, ForkedWorkerSpansMergeIntoOneNestedTimeline) {
  const char* module = R"(
def double(x):
    return 2 * x
)";
  obs::Recorder::global().set_enabled(true);
  obs::Recorder::global().clear();

  obs::Collector collector;
  EventLoop loop;
  MasterServiceConfig config;
  config.on_telemetry = [&](wq::TelemetryMessage&& msg) {
    collector.add(msg.source, msg.clock_offset, std::move(msg.events),
                  msg.dropped);
  };
  MasterService master(loop, config);
  const int kTasks = 6;
  for (int i = 0; i < kTasks; ++i) {
    auto [task, files] = wq::make_python_task(
        700 + static_cast<uint64_t>(i), "double", module, "double",
        serde::Value(serde::ValueList{serde::Value(int64_t{i})}),
        alloc::Resources{1.0, 512e6, 1e9});
    master.submit(task, files);
  }
  const pid_t worker = fork_traced_worker(master.port(), "traced-w");
  const NetMasterStats stats = master.run_until_complete(120.0);
  int status = -1;
  ASSERT_EQ(waitpid(worker, &status, 0), worker);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(stats.tasks_completed, kTasks);
  EXPECT_GE(stats.telemetry_frames, 1);

  collector.add_local("master", obs::Recorder::global().drain_events());
  obs::Recorder::global().set_enabled(false);
  obs::Recorder::global().clear();

  // Group the merged, clock-normalized spans by trace id. At least one
  // task's id must appear in both process lanes with the worker's lfm.run
  // span nested inside the master's task span. (A task CAN legitimately
  // run twice — at-least-once attempts — so we require one cleanly nested
  // id, not that every id is.)
  struct PerTrace {
    double task_begin = 0.0, task_end = 0.0;
    bool has_task = false;
    std::vector<double> run_begin, run_end;
    std::map<uint64_t, int> lanes;
  };
  std::map<uint64_t, PerTrace> traces;
  for (const auto& ev : collector.events()) {
    if (ev.trace_id == 0) continue;
    PerTrace& t = traces[ev.trace_id];
    ++t.lanes[ev.pid];
    if (ev.ph == 'X' && ev.name == "task") {
      t.has_task = true;
      t.task_begin = ev.ts;
      t.task_end = ev.ts + ev.dur;
    }
    // End events travel nameless (Chrome-trace convention: E closes the
    // innermost open B on its lane); only the worker emits B/E here.
    if (ev.ph == 'B' && ev.name == "lfm.run") t.run_begin.push_back(ev.ts);
    if (ev.ph == 'E') t.run_end.push_back(ev.ts);
  }
  EXPECT_EQ(traces.size(), static_cast<size_t>(kTasks));
  const double kSkewTolerance = 1e-3;  // clock alignment is RTT/2-bounded
  int nested = 0;
  for (const auto& [id, t] : traces) {
    if (!t.has_task || t.lanes.size() < 2) continue;
    // A run produces nested lfm.run B/E pairs (the worker's dispatch span
    // and the monitor's inner span); the outermost window is what the
    // master's task span must contain.
    if (t.run_begin.empty() || t.run_end.empty()) continue;
    const double run_first =
        *std::min_element(t.run_begin.begin(), t.run_begin.end());
    const double run_last =
        *std::max_element(t.run_end.begin(), t.run_end.end());
    if (t.task_begin - kSkewTolerance <= run_first && run_first <= run_last &&
        run_last <= t.task_end + kSkewTolerance) {
      ++nested;
    }
  }
  EXPECT_GE(nested, 1) << "no trace id produced a cleanly nested "
                          "master-task / worker-run span pair";
}

TEST(WorkerClient, GivesUpWhenMasterNeverAppears) {
  WorkerClientOptions options;
  options.host = "127.0.0.1";
  options.port = 1;  // nothing listens here
  options.name = "orphan";
  options.max_reconnect_attempts = 2;
  chaos::RetryPolicy fast;
  fast.backoff_base = 0.001;
  fast.backoff_max = 0.002;
  options.reconnect = fast;
  WorkerClient client(options);
  EXPECT_THROW(client.run(), Error);
}

}  // namespace
}  // namespace lfm::net
