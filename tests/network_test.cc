// Unit tests for the fluid-flow shared network model.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/network.h"
#include "util/units.h"

namespace lfm::sim {
namespace {

NetworkParams fast_params() {
  NetworkParams p;
  p.bandwidth = 100e6;  // 100 MB/s aggregate
  p.per_flow_bandwidth = 100e6;
  p.latency = 0.0;
  return p;
}

TEST(Network, SingleTransferTime) {
  Simulation sim;
  Network net(sim, fast_params());
  double done_at = -1.0;
  net.transfer(100_MB, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 1.0, 1e-6);
}

TEST(Network, ConcurrentTransfersShareBandwidth) {
  Simulation sim;
  Network net(sim, fast_params());
  double first = -1.0, second = -1.0;
  net.transfer(100_MB, [&] { first = sim.now(); });
  net.transfer(100_MB, [&] { second = sim.now(); });
  sim.run();
  // Two equal flows at half bandwidth each: both finish at ~2 s.
  EXPECT_NEAR(first, 2.0, 1e-6);
  EXPECT_NEAR(second, 2.0, 1e-6);
}

TEST(Network, LateArrivalSlowsExistingFlow) {
  Simulation sim;
  Network net(sim, fast_params());
  double big_done = -1.0, small_done = -1.0;
  net.transfer(100_MB, [&] { big_done = sim.now(); });
  sim.schedule(0.5, [&] { net.transfer(25_MB, [&] { small_done = sim.now(); }); });
  sim.run();
  // First 0.5 s: flow A moves 50 MB. Then both share: A needs 50 MB at
  // 50 MB/s = 1 s more if B stays. B needs 25 MB at 50 MB/s = 0.5 s, done at
  // t=1.0. Then A alone: 25 MB left at full rate = 0.25 s -> 1.25 s total.
  EXPECT_NEAR(small_done, 1.0, 1e-6);
  EXPECT_NEAR(big_done, 1.25, 1e-6);
}

TEST(Network, PerFlowCeilingLimitsLoneFlow) {
  NetworkParams p = fast_params();
  p.per_flow_bandwidth = 10e6;
  Simulation sim;
  Network net(sim, p);
  double done = -1.0;
  net.transfer(10_MB, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 1.0, 1e-6);  // capped at 10 MB/s despite 100 MB/s link
}

TEST(Network, ZeroByteTransferCompletes) {
  Simulation sim;
  Network net(sim, fast_params());
  bool done = false;
  net.transfer(0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Network, ManySmallTransfers) {
  Simulation sim;
  Network net(sim, fast_params());
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    net.transfer(1_MB, [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 200);
  EXPECT_EQ(net.active_flows(), 0);
  // 200 MB total at 100 MB/s aggregate: exactly 2 s regardless of sharing.
  EXPECT_NEAR(sim.now(), 2.0, 1e-6);
}

TEST(Network, ClosedFormTransferSeconds) {
  Simulation sim;
  NetworkParams p = fast_params();
  p.latency = 0.001;
  Network net(sim, p);
  EXPECT_NEAR(net.transfer_seconds(100_MB, 1), 1.001, 1e-9);
  EXPECT_NEAR(net.transfer_seconds(100_MB, 4), 4.001, 1e-9);
}

TEST(Network, LatencyAddsToTransfers) {
  NetworkParams p = fast_params();
  p.latency = 0.1;
  Simulation sim;
  Network net(sim, p);
  double done = -1.0;
  net.transfer(100_MB, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 1.1, 1e-6);
}

}  // namespace
}  // namespace lfm::sim
