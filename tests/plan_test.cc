// Tests for dependency planning: analyzer -> pinned requirements -> minimal
// environment (the paper's Parsl/static-analysis integration).
#include <gtest/gtest.h>

#include "flow/plan.h"
#include "pkg/index.h"

namespace lfm::flow {
namespace {

const pkg::PackageIndex& index() {
  const pkg::PackageIndex& idx = pkg::standard_index();
  return idx;
}

TEST(Plan, FunctionPlanPinsInstalledVersions) {
  const char* src = R"(
def analyze(events):
    import numpy as np
    import coffea
    hist = np.histogram(events)
    return coffea.process(hist)
)";
  const auto plan = plan_function_dependencies(src, "analyze", index());
  EXPECT_EQ(plan.import_names, (std::set<std::string>{"numpy", "coffea"}));
  // python + numpy + coffea, pinned exactly.
  bool saw_numpy = false, saw_python = false;
  for (const auto& req : plan.requirements) {
    if (req.name == "numpy") {
      saw_numpy = true;
      EXPECT_EQ(req.str(), "numpy==1.19.2");
    }
    if (req.name == "python") saw_python = true;
  }
  EXPECT_TRUE(saw_numpy);
  EXPECT_TRUE(saw_python);
}

TEST(Plan, StdlibImportsExcluded) {
  const char* src = "def f():\n    import os\n    import json\n    return 1\n";
  const auto plan = plan_function_dependencies(src, "f", index());
  EXPECT_TRUE(plan.import_names.empty());
  // Only the interpreter remains.
  ASSERT_EQ(plan.requirements.size(), 1u);
  EXPECT_EQ(plan.requirements[0].name, "python");
}

TEST(Plan, ImportAliasTranslation) {
  const char* src = "def f():\n    import sklearn\n    return sklearn\n";
  const auto plan = plan_function_dependencies(src, "f", index());
  bool saw = false;
  for (const auto& req : plan.requirements) {
    if (req.name == "scikit-learn") saw = true;
  }
  EXPECT_TRUE(saw) << "sklearn import should map to the scikit-learn package";
}

TEST(Plan, UnknownImportProducesWarning) {
  const char* src = "def f():\n    import not_a_real_pkg\n    return 1\n";
  const auto plan = plan_function_dependencies(src, "f", index());
  bool warned = false;
  for (const auto& d : plan.diagnostics) {
    if (d.message.find("not_a_real_pkg") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(Plan, ModulePlanSeesAllImports) {
  const char* src = R"(
import pandas

def f():
    import numpy
    return numpy
)";
  const auto module_plan = plan_module_dependencies(src, index());
  EXPECT_EQ(module_plan.import_names, (std::set<std::string>{"pandas", "numpy"}));
  const auto fn_plan = plan_function_dependencies(src, "f", index());
  EXPECT_EQ(fn_plan.import_names, (std::set<std::string>{"numpy"}));
}

TEST(Plan, BuildEnvironmentSolvesClosure) {
  const char* src = "def f():\n    import tensorflow as tf\n    return tf\n";
  const auto plan = plan_function_dependencies(src, "f", index());
  const auto env = build_environment("tf-fn", plan, index());
  ASSERT_TRUE(env.ok());
  EXPECT_GT(env.value().package_count(), 15u);
  EXPECT_NE(env.value().requirements_txt().find("tensorflow==2.3.1"),
            std::string::npos);
}

TEST(Plan, MinimalEnvironmentIsSmallerThanKitchenSink) {
  // The §V.B motivation: per-function environments are much smaller than
  // the user's full installation.
  const char* light_src = "def f():\n    import six\n    return six\n";
  const char* heavy_src = "def f():\n    import tensorflow\n    return tensorflow\n";
  const auto light =
      build_environment("light", plan_function_dependencies(light_src, "f", index()), index());
  const auto heavy =
      build_environment("heavy", plan_function_dependencies(heavy_src, "f", index()), index());
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_LT(light.value().total_size(), heavy.value().total_size() / 5);
}

TEST(Plan, MissingFunctionSurfacesErrorDiagnostic) {
  const auto plan = plan_function_dependencies("x = 1\n", "ghost", index());
  ASSERT_FALSE(plan.diagnostics.empty());
  EXPECT_EQ(plan.diagnostics[0].severity, pysrc::Diagnostic::Severity::kError);
  EXPECT_TRUE(plan.import_names.empty());
}

TEST(Plan, DefaultAliasesCoverCommonCases) {
  const auto& aliases = default_import_aliases();
  EXPECT_EQ(aliases.at("sklearn"), "scikit-learn");
  EXPECT_EQ(aliases.at("PIL"), "pillow");
  EXPECT_EQ(aliases.at("work_queue"), "work-queue");
}

TEST(Plan, RealisticHepFunctionEndToEnd) {
  const char* src = R"(
@python_app
def process_events(chunk):
    import numpy as np
    import coffea
    from coffea import hist
    import awkward
    events = awkward.from_buffers(chunk)
    h = hist.Hist("pt")
    h.fill(pt=np.asarray(events))
    return h
)";
  const auto plan = plan_function_dependencies(src, "process_events", index());
  EXPECT_EQ(plan.import_names,
            (std::set<std::string>{"numpy", "coffea", "awkward"}));
  const auto env = build_environment("hep", plan, index());
  ASSERT_TRUE(env.ok());
  // The HEP env contains the coffea stack but NOT tensorflow.
  EXPECT_NE(env.value().requirements_txt().find("coffea"), std::string::npos);
  EXPECT_EQ(env.value().requirements_txt().find("tensorflow"), std::string::npos);
}


TEST(Plan, NonSelfContainedFunctionWarns) {
  const char* src = R"(
WEIGHTS = load_weights()

def predict(batch):
    import numpy
    return WEIGHTS @ numpy.asarray(batch)
)";
  const auto plan = plan_function_dependencies(src, "predict", index());
  bool warned = false;
  for (const auto& d : plan.diagnostics) {
    if (d.message.find("WEIGHTS") != std::string::npos &&
        d.message.find("undefined on the worker") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

}  // namespace
}  // namespace lfm::flow
