// Unit tests for the automatic resource labeling algorithm (paper §VI.B.2)
// and the four management strategies.
#include <gtest/gtest.h>

#include "alloc/labeler.h"
#include "util/error.h"
#include "util/rng.h"

namespace lfm::alloc {
namespace {

LabelerConfig base_config() {
  LabelerConfig c;
  c.whole_node = Resources{8.0, 8e9, 16e9};
  c.guess = Resources{1.0, 1.5e9, 2e9};
  c.warmup_samples = 3;
  return c;
}

TEST(Resources, FitsAndArithmetic) {
  const Resources small{1.0, 1e9, 1e9};
  const Resources big{4.0, 8e9, 8e9};
  EXPECT_TRUE(small.fits_in(big));
  EXPECT_FALSE(big.fits_in(small));
  const Resources sum = small + big;
  EXPECT_DOUBLE_EQ(sum.cores, 5.0);
  Resources acc = big;
  acc -= small;
  EXPECT_DOUBLE_EQ(acc.cores, 3.0);
  EXPECT_TRUE(acc.nonnegative());
  const Resources mx = Resources::elementwise_max(small, big);
  EXPECT_DOUBLE_EQ(mx.memory_bytes, 8e9);
}

TEST(Resources, PartialFitFailsPerDimension) {
  const Resources task{1.0, 9e9, 1e9};  // memory too big
  const Resources node{8.0, 8e9, 16e9};
  EXPECT_FALSE(task.fits_in(node));
}

TEST(Strategy, Names) {
  EXPECT_STREQ(strategy_name(Strategy::kOracle), "oracle");
  EXPECT_STREQ(strategy_name(Strategy::kAuto), "auto");
  EXPECT_STREQ(strategy_name(Strategy::kGuess), "guess");
  EXPECT_STREQ(strategy_name(Strategy::kUnmanaged), "unmanaged");
}

TEST(CategoryLabeler, UnmanagedAlwaysWholeNode) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kUnmanaged;
  CategoryLabeler labeler(c);
  EXPECT_DOUBLE_EQ(labeler.allocation(0).cores, 8.0);
  EXPECT_DOUBLE_EQ(labeler.allocation(3).cores, 8.0);
}

TEST(CategoryLabeler, GuessUsesGuessThenEscalates) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kGuess;
  CategoryLabeler labeler(c);
  EXPECT_DOUBLE_EQ(labeler.allocation(0).memory_bytes, 1.5e9);
  EXPECT_DOUBLE_EQ(labeler.allocation(1).memory_bytes, 8e9);  // whole node
}

TEST(CategoryLabeler, OracleUsesConfiguredKnowledge) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kOracle;
  c.oracle = Resources{1.0, 110e6, 1e9};
  CategoryLabeler labeler(c);
  EXPECT_DOUBLE_EQ(labeler.allocation(0).memory_bytes, 110e6);
}

TEST(CategoryLabeler, AutoWarmupRunsWholeNode) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kAuto;
  CategoryLabeler labeler(c);
  EXPECT_DOUBLE_EQ(labeler.allocation(0).cores, 8.0);  // no samples yet
  labeler.observe_success(Resources{1.0, 100e6, 1e9});
  EXPECT_DOUBLE_EQ(labeler.allocation(0).cores, 8.0);  // still warming up
}

TEST(CategoryLabeler, AutoLearnsTightLabel) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kAuto;
  CategoryLabeler labeler(c);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    labeler.observe_success(
        Resources{1.0, rng.uniform(70e6, 110e6), rng.uniform(700e6, 1000e6)});
  }
  const Resources label = labeler.allocation(0);
  // Tight label: far below whole node, at or above typical usage.
  EXPECT_LT(label.memory_bytes, 1e9);
  EXPECT_GT(label.memory_bytes, 70e6);
  EXPECT_LT(label.disk_bytes, 3e9);
  EXPECT_DOUBLE_EQ(label.cores, 1.0);
}

TEST(CategoryLabeler, AutoEscalatesToWholeNodeOnRetry) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kAuto;
  CategoryLabeler labeler(c);
  for (int i = 0; i < 10; ++i) labeler.observe_success(Resources{1.0, 100e6, 1e9});
  const Resources retry = labeler.allocation(1);
  EXPECT_DOUBLE_EQ(retry.memory_bytes, 8e9);
  EXPECT_DOUBLE_EQ(retry.cores, 8.0);
}

TEST(CategoryLabeler, ExhaustionGrowsLabel) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kAuto;
  c.warmup_samples = 1;
  CategoryLabeler labeler(c);
  for (int i = 0; i < 20; ++i) labeler.observe_success(Resources{1.0, 1e9, 1e9});
  const double before = labeler.allocation(0).memory_bytes;
  // A stream of exhaustions at the current label must push it up.
  for (int i = 0; i < 40; ++i) {
    labeler.observe_exhaustion(Resources{1.0, before, 1e9}, "memory");
  }
  const double after = labeler.allocation(0).memory_bytes;
  EXPECT_GT(after, before);
  EXPECT_EQ(labeler.exhaustions(), 40);
}

TEST(CategoryLabeler, CostObjectivePrefersPackingWhenUsageIsBimodal) {
  // 90% of tasks use 1 GB, 10% use 7 GB. The throughput-optimal label is the
  // small one (cost 1 + 0.1*8 = 1.8) not the big one (cost ~7.1).
  LabelerConfig c = base_config();
  c.strategy = Strategy::kAuto;
  c.headroom = 1.0;
  CategoryLabeler labeler(c);
  for (int i = 0; i < 90; ++i) labeler.observe_success(Resources{1.0, 1e9, 1e9});
  for (int i = 0; i < 10; ++i) labeler.observe_success(Resources{1.0, 7e9, 1e9});
  const double label = labeler.allocation(0).memory_bytes;
  EXPECT_LT(label, 2e9);
}

TEST(CategoryLabeler, CostObjectivePrefersLargeWhenRetriesDominate) {
  // Usage uniform near the node size: a small label would fail everything.
  LabelerConfig c = base_config();
  c.strategy = Strategy::kAuto;
  CategoryLabeler labeler(c);
  for (int i = 0; i < 50; ++i) labeler.observe_success(Resources{1.0, 7.5e9, 1e9});
  EXPECT_GE(labeler.allocation(0).memory_bytes, 7.5e9);
}

TEST(CategoryLabeler, RejectsBadConfig) {
  LabelerConfig c;
  c.whole_node = Resources{0.0, 0.0, 0.0};
  EXPECT_THROW(CategoryLabeler{c}, Error);
}

TEST(CategoryLabeler, RejectsNegativeAttempt) {
  CategoryLabeler labeler(base_config());
  EXPECT_THROW(labeler.allocation(-1), Error);
}

TEST(Labeler, PerCategoryIsolation) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kAuto;
  c.warmup_samples = 1;
  Labeler labeler(c);
  for (int i = 0; i < 20; ++i) {
    labeler.observe_success("light", Resources{1.0, 100e6, 500e6});
    labeler.observe_success("heavy", Resources{4.0, 6e9, 8e9});
  }
  EXPECT_LT(labeler.allocation("light", 0).memory_bytes,
            labeler.allocation("heavy", 0).memory_bytes / 5.0);
  EXPECT_EQ(labeler.total_samples(), 40);
}

TEST(Labeler, OracleOverridesPerCategory) {
  LabelerConfig c = base_config();
  c.strategy = Strategy::kOracle;
  Labeler labeler(c);
  labeler.set_oracle("vep", Resources{2.0, 20e9, 3e9});
  EXPECT_DOUBLE_EQ(labeler.allocation("vep", 0).memory_bytes, 20e9);
  // Unknown category without oracle: falls back to whole node.
  EXPECT_DOUBLE_EQ(labeler.allocation("unknown", 0).memory_bytes, 8e9);
  // Setting the oracle after first use still takes effect.
  labeler.set_oracle("unknown", Resources{1.0, 1e9, 1e9});
  EXPECT_DOUBLE_EQ(labeler.allocation("unknown", 0).memory_bytes, 1e9);
}

TEST(Labeler, AutoConvergesUnderRealisticStream) {
  // End-to-end behaviour: warmup at whole node, then tight labels with a
  // low exhaustion rate on a stationary workload (the <1% HEP claim).
  LabelerConfig c = base_config();
  c.strategy = Strategy::kAuto;
  Labeler labeler(c);
  Rng rng(99);
  int exhaustions = 0;
  const int tasks = 500;
  for (int i = 0; i < tasks; ++i) {
    const Resources need{1.0, rng.truncated_normal(84e6, 10e6, 50e6, 110e6),
                         rng.truncated_normal(880e6, 60e6, 700e6, 1000e6)};
    Resources alloc = labeler.allocation("hep", 0);
    if (need.memory_bytes > alloc.memory_bytes || need.disk_bytes > alloc.disk_bytes) {
      ++exhaustions;
      labeler.observe_exhaustion("hep", alloc,
                                 need.memory_bytes > alloc.memory_bytes ? "memory" : "disk");
      alloc = labeler.allocation("hep", 1);  // whole-node retry always fits
    }
    labeler.observe_success("hep", need);
  }
  EXPECT_LT(exhaustions, tasks / 20);  // < 5% retries
  const Resources final_label = labeler.allocation("hep", 0);
  EXPECT_LT(final_label.memory_bytes, 500e6);  // far tighter than the node
}

}  // namespace
}  // namespace lfm::alloc
