// Unit tests for the shared-FS contention model and local disk model.
// These encode the qualitative behaviour of paper §V.A / Figs 4-5.
#include <gtest/gtest.h>

#include "sim/filesystem.h"
#include "util/error.h"
#include "util/units.h"

namespace lfm::sim {
namespace {

SharedFsParams default_params() {
  SharedFsParams p;
  p.metadata_op_seconds = 0.001;
  p.metadata_capacity = 10000.0;  // ops/sec at the MDS
  p.demand_window = 10.0;
  p.contention_exponent = 2.0;
  p.max_slowdown = 1000.0;
  p.aggregate_bandwidth = 8e9;
  p.per_client_bandwidth = 1.2e9;
  return p;
}

TEST(SharedFs, UnloadedLatencyIsServiceTime) {
  const SharedFilesystem fs(default_params());
  // One node, one op, no data: just the cold-lookup time.
  EXPECT_NEAR(fs.access_seconds(1, 1, 0), 0.001, 1e-9);
}

TEST(SharedFs, MetadataCostScalesWithOps) {
  const SharedFilesystem fs(default_params());
  // Below the MDS capacity the per-op latency is constant.
  const double one = fs.access_seconds(1, 100, 0);
  const double ten = fs.access_seconds(1, 1000, 0);
  EXPECT_NEAR(ten / one, 10.0, 1e-6);
}

TEST(SharedFs, NoContentionBelowCapacity) {
  const SharedFilesystem fs(default_params());
  // 10 nodes x 1000 ops / 10 s window = 1000 ops/s << 10000 capacity.
  EXPECT_NEAR(fs.access_seconds(1, 1000, 0), fs.access_seconds(10, 1000, 0), 1e-9);
}

TEST(SharedFs, ContentionGrowsSuperlinearlyPastCapacity) {
  const SharedFilesystem fs(default_params());
  // Demand = nodes * 10000 ops / 10 s = nodes * 1000 ops/s; capacity 10000.
  const double at_capacity = fs.access_seconds(10, 10000, 0);
  const double twice = fs.access_seconds(20, 10000, 0);      // util 2 -> 4x
  const double eight_times = fs.access_seconds(80, 10000, 0);  // util 8 -> 64x
  EXPECT_NEAR(twice / at_capacity, 4.0, 1e-6);
  EXPECT_NEAR(eight_times / at_capacity, 64.0, 1e-6);
}

TEST(SharedFs, SlowdownClampedAtMaxSlowdown) {
  SharedFsParams p = default_params();
  p.max_slowdown = 50.0;
  const SharedFilesystem fs(p);
  const double base = fs.access_seconds(1, 10000, 0);
  // util = 1000 -> unclamped slowdown 1e6; clamp holds it at 50x.
  const double flooded = fs.access_seconds(10000, 10000, 0);
  EXPECT_NEAR(flooded / base, 50.0, 1e-6);
}

TEST(SharedFs, BandwidthSharedFairly) {
  SharedFsParams p = default_params();
  p.metadata_op_seconds = 0.0;  // isolate data path
  const SharedFilesystem fs(p);
  const double alone = fs.access_seconds(1, 0, 1_GB);
  const double crowded = fs.access_seconds(100, 0, 1_GB);
  // 100 nodes -> each gets 80 MB/s vs. the 1.2 GB/s single-node cap.
  EXPECT_NEAR(alone, 1e9 / 1.2e9, 1e-6);
  EXPECT_NEAR(crowded, 1e9 / 80e6, 1e-6);
}

TEST(SharedFs, PerClientBandwidthCeiling) {
  SharedFsParams p = default_params();
  p.metadata_op_seconds = 0.0;
  p.aggregate_bandwidth = 1000e9;  // effectively unlimited aggregate
  const SharedFilesystem fs(p);
  // Even alone, a single node cannot exceed its ceiling.
  EXPECT_NEAR(fs.access_seconds(1, 0, 1_GB), 1e9 / 1.2e9, 1e-6);
}

TEST(SharedFs, RejectsZeroClients) {
  const SharedFilesystem fs(default_params());
  EXPECT_THROW(fs.access_seconds(0, 1, 1), Error);
}

TEST(SharedFs, DirectImportTouchesEveryFile) {
  const SharedFilesystem fs(default_params());
  // 1000-file environment vs 10-file: metadata ops dominate.
  const double small = fs.direct_import_seconds(1, 10, 1_MB);
  const double large = fs.direct_import_seconds(1, 1000, 1_MB);
  EXPECT_GT(large, small * 20.0);
}

TEST(SharedFs, ArchiveFetchIsMetadataLight) {
  const SharedFilesystem fs(default_params());
  // Same bytes, but one file vs 5000 files: the Fig 5 mechanism.
  const int nodes = 64;
  const double direct = fs.direct_import_seconds(nodes, 5000, 2_GB);
  const double packed = fs.archive_fetch_seconds(nodes, 2_GB);
  EXPECT_GT(direct, packed * 5.0);
}

TEST(SharedFs, SmallImportsStayFlatLargeImportsCollapse) {
  // The Fig 4 signature: a small module's import time is nearly constant
  // with node count while a large package's import blows up.
  const SharedFilesystem fs(default_params());
  const double small_1 = fs.direct_import_seconds(1, 150, 30_MB);
  const double small_512 = fs.direct_import_seconds(512, 150, 30_MB);
  const double large_1 = fs.direct_import_seconds(1, 15000, 1200_MB);
  const double large_512 = fs.direct_import_seconds(512, 15000, 1200_MB);
  EXPECT_LT(small_512 / small_1, 10.0);   // near-flat
  EXPECT_GT(large_512 / large_1, 50.0);   // collapse
}

TEST(LocalDisk, UnpackCost) {
  LocalDiskParams p;
  p.bandwidth = 500e6;
  p.file_create_seconds = 2e-5;
  const LocalDisk disk(p);
  const double t = disk.unpack_seconds(1000, 500_MB);
  EXPECT_NEAR(t, 1000 * 2e-5 + 1.0, 1e-6);
}

TEST(LocalDisk, ReadCheaperThanUnpack) {
  const LocalDisk disk(LocalDiskParams{});
  EXPECT_LT(disk.read_seconds(1000, 100_MB), disk.unpack_seconds(1000, 100_MB));
}

TEST(SharedFs, LocalUnpackBeatsDirectAtScale) {
  // The headline Fig 5 claim: direct shared-FS import degrades far faster
  // than packed-transfer + local unpack as the node count rises.
  const SharedFilesystem fs(default_params());
  const LocalDisk disk(LocalDiskParams{});
  const int files = 5000;
  const int64_t size = 2_GB;
  for (const int nodes : {16, 64, 256}) {
    const double direct = fs.direct_import_seconds(nodes, files, size);
    const double packed =
        fs.archive_fetch_seconds(nodes, size / 2) + disk.unpack_seconds(files, size);
    EXPECT_GT(direct, packed) << "nodes=" << nodes;
  }
}

}  // namespace
}  // namespace lfm::sim
