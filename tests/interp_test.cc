// Tests for the mini-Python interpreter: Python semantics of the supported
// subset, error behaviour, and the function-shipping use case.
#include <gtest/gtest.h>

#include "pysrc/interp.h"
#include "pysrc/unparse.h"

namespace lfm::pysrc {
namespace {

using serde::Value;
using serde::ValueDict;
using serde::ValueList;

// Evaluate one expression in a fresh interpreter.
Value ev(const std::string& expr) {
  Interpreter interp;
  return interp.eval_expression_source(expr);
}

// Run a module then return the global `result`.
Value run(const std::string& source) {
  Interpreter interp;
  interp.exec_source(source);
  return interp.global("result");
}

TEST(Interp, ArithmeticSemantics) {
  EXPECT_EQ(ev("1 + 2 * 3").as_int(), 7);
  EXPECT_EQ(ev("2 ** 10").as_int(), 1024);
  EXPECT_DOUBLE_EQ(ev("7 / 2").as_real(), 3.5);       // true division
  EXPECT_EQ(ev("7 // 2").as_int(), 3);                // floor division
  EXPECT_EQ(ev("-7 // 2").as_int(), -4);              // floors toward -inf
  EXPECT_EQ(ev("-7 % 3").as_int(), 2);                // sign of divisor
  EXPECT_EQ(ev("7 % -3").as_int(), -2);
  EXPECT_DOUBLE_EQ(ev("2 ** -1").as_real(), 0.5);
  EXPECT_EQ(ev("0x1F + 0b101 + 0o17").as_int(), 31 + 5 + 15);
  EXPECT_EQ(ev("10_000 + 1").as_int(), 10001);
  EXPECT_EQ(ev("5 & 3").as_int(), 1);
  EXPECT_EQ(ev("1 << 10").as_int(), 1024);
}

TEST(Interp, DivisionByZeroRaises) {
  EXPECT_THROW(ev("1 / 0"), PyError);
  EXPECT_THROW(ev("1 // 0"), PyError);
  EXPECT_THROW(ev("1 % 0"), PyError);
}

TEST(Interp, StringOperations) {
  EXPECT_EQ(ev("'ab' + 'cd'").as_str(), "abcd");
  EXPECT_EQ(ev("'ab' * 3").as_str(), "ababab");
  EXPECT_EQ(ev("'hello'[1]").as_str(), "e");
  EXPECT_EQ(ev("'hello'[-1]").as_str(), "o");
  EXPECT_EQ(ev("'hello'[1:4]").as_str(), "ell");
  EXPECT_EQ(ev("'hello'[::-1]").as_str(), "olleh");
  EXPECT_TRUE(ev("'ell' in 'hello'").as_bool());
  EXPECT_TRUE(ev("'a' < 'b'").as_bool());
}

TEST(Interp, ComparisonChainsAndBoolOps) {
  EXPECT_TRUE(ev("1 < 2 < 3").as_bool());
  EXPECT_FALSE(ev("1 < 2 > 3").as_bool());
  EXPECT_EQ(ev("0 or 'fallback'").as_str(), "fallback");  // returns operand
  EXPECT_EQ(ev("1 and 2").as_int(), 2);
  EXPECT_FALSE(ev("not 1").as_bool());
  EXPECT_TRUE(ev("None is None").as_bool());
  EXPECT_TRUE(ev("1 == 1.0").as_bool());  // numeric cross-type equality
}

TEST(Interp, ListsAndSlices) {
  EXPECT_EQ(ev("[1, 2] + [3]").repr(), "[1, 2, 3]");
  EXPECT_EQ(ev("[0] * 3").repr(), "[0, 0, 0]");
  EXPECT_EQ(ev("[1, 2, 3][-1]").as_int(), 3);
  EXPECT_EQ(ev("[1, 2, 3, 4][1:3]").repr(), "[2, 3]");
  EXPECT_EQ(ev("[1, 2, 3, 4][::2]").repr(), "[1, 3]");
  EXPECT_TRUE(ev("2 in [1, 2]").as_bool());
  EXPECT_THROW(ev("[1][5]"), PyError);  // IndexError
}

TEST(Interp, DictOperations) {
  EXPECT_EQ(ev("{'a': 1}['a']").as_int(), 1);
  EXPECT_TRUE(ev("'a' in {'a': 1}").as_bool());
  EXPECT_THROW(ev("{'a': 1}['b']"), PyError);  // KeyError
  EXPECT_EQ(ev("{'a': 1, **{'b': 2}}").as_dict().size(), 2u);
}

TEST(Interp, VariablesAndAssignment) {
  EXPECT_EQ(run("x = 1\ny = x + 1\nresult = x * 10 + y\n").as_int(), 12);
  EXPECT_EQ(run("a = b = 5\nresult = a + b\n").as_int(), 10);
  EXPECT_EQ(run("a, b = 1, 2\na, b = b, a\nresult = [a, b]\n").repr(), "[2, 1]");
  EXPECT_EQ(run("x = 10\nx += 5\nx *= 2\nresult = x\n").as_int(), 30);
  EXPECT_EQ(run("xs = [1, 2, 3]\nxs[1] = 99\nresult = xs\n").repr(), "[1, 99, 3]");
  EXPECT_EQ(run("d = {}\nd['k'] = 7\nd['k'] += 1\nresult = d['k']\n").as_int(), 8);
}

TEST(Interp, ControlFlow) {
  EXPECT_EQ(run(R"(
total = 0
for i in range(10):
    if i % 2 == 0:
        continue
    if i > 7:
        break
    total += i
result = total
)").as_int(), 1 + 3 + 5 + 7);

  EXPECT_EQ(run(R"(
n = 0
while n < 100:
    n = n * 2 + 1
result = n
)").as_int(), 127);

  EXPECT_EQ(run(R"(
found = False
for x in [1, 2, 3]:
    if x == 99:
        found = True
        break
else:
    found = 'exhausted'
result = found
)").as_str(), "exhausted");
}

TEST(Interp, FunctionsAndRecursion) {
  Interpreter interp;
  interp.exec_source(R"(
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def greet(name, punct='!'):
    return 'hello ' + name + punct

def total(*values):
    acc = 0
    for v in values:
        acc += v
    return acc
)");
  EXPECT_EQ(interp.call("fib", {Value(15)}).as_int(), 610);
  EXPECT_EQ(interp.call("greet", {Value("world")}).as_str(), "hello world!");
  EXPECT_EQ(interp.call("greet", {Value("x"), Value("?")}).as_str(), "hello x?");
  EXPECT_EQ(interp.call("total", {Value(1), Value(2), Value(3)}).as_int(), 6);
  EXPECT_THROW(interp.call("fib", {}), PyError);  // missing argument
  EXPECT_THROW(interp.call("nope", {}), PyError);
}

TEST(Interp, RecursionLimit) {
  InterpOptions options;
  options.max_recursion_depth = 16;
  Interpreter interp(options);
  interp.exec_source("def loop(n):\n    return loop(n + 1)\n");
  try {
    interp.call("loop", {Value(0)});
    FAIL() << "expected RecursionError";
  } catch (const PyError& e) {
    EXPECT_EQ(e.type_name, "RecursionError");
  }
}

TEST(Interp, StepBudgetStopsInfiniteLoop) {
  InterpOptions options;
  options.max_steps = 10000;
  Interpreter interp(options);
  EXPECT_THROW(interp.exec_source("while True:\n    pass\n"), PyError);
}

TEST(Interp, Comprehensions) {
  EXPECT_EQ(ev("[x * x for x in range(5)]").repr(), "[0, 1, 4, 9, 16]");
  EXPECT_EQ(ev("[x for x in range(10) if x % 3 == 0]").repr(), "[0, 3, 6, 9]");
  EXPECT_EQ(ev("[i * j for i in [1, 2] for j in [10, 20]]").repr(),
            "[10, 20, 20, 40]");
  EXPECT_EQ(ev("{str(x): x * 2 for x in range(3)}").repr(),
            "{'0': 0, '1': 2, '2': 4}");
  EXPECT_EQ(ev("sum(x for x in range(101))").as_int(), 5050);
}

TEST(Interp, LambdasAndSortedKey) {
  EXPECT_EQ(ev("(lambda a, b: a * b)(6, 7)").as_int(), 42);
  Interpreter interp;
  interp.exec_source(R"(
pairs = [['b', 2], ['a', 3], ['c', 1]]
by_name = sorted(pairs, key=lambda p: p[0])
by_count = sorted(pairs, key=lambda p: p[1], reverse=True)
result = [by_name[0][0], by_count[0][0]]
)");
  EXPECT_EQ(interp.global("result").repr(), "['a', 'a']");
}

TEST(Interp, ClosuresCaptureByValue) {
  EXPECT_EQ(run(R"(
def make_adder(k):
    return lambda x: x + k

add5 = make_adder(5)
result = add5(37)
)").as_int(), 42);
}

TEST(Interp, Builtins) {
  EXPECT_EQ(ev("len('hello')").as_int(), 5);
  EXPECT_EQ(ev("len([1, 2])").as_int(), 2);
  EXPECT_EQ(ev("min(3, 1, 2)").as_int(), 1);
  EXPECT_EQ(ev("max([3, 1, 2])").as_int(), 3);
  EXPECT_EQ(ev("sum([1, 2, 3])").as_int(), 6);
  EXPECT_EQ(ev("sorted([3, 1, 2])").repr(), "[1, 2, 3]");
  EXPECT_EQ(ev("abs(-5)").as_int(), 5);
  EXPECT_EQ(ev("int('42')").as_int(), 42);
  EXPECT_EQ(ev("int('ff', 16)").as_int(), 255);
  EXPECT_DOUBLE_EQ(ev("float('2.5')").as_real(), 2.5);
  EXPECT_EQ(ev("str(42)").as_str(), "42");
  EXPECT_EQ(ev("round(2.675, 2)").as_real(), 2.68);
  EXPECT_EQ(ev("round(2.5)").as_int(), 3);
  EXPECT_TRUE(ev("any([0, 0, 1])").as_bool());
  EXPECT_FALSE(ev("all([1, 0])").as_bool());
  EXPECT_EQ(ev("list(enumerate(['a', 'b']))").repr(), "[[0, 'a'], [1, 'b']]");
  EXPECT_EQ(ev("list(zip([1, 2], ['a', 'b', 'c']))").repr(), "[[1, 'a'], [2, 'b']]");
  EXPECT_THROW(ev("int('nope')"), PyError);
}

TEST(Interp, UserFunctionShadowsBuiltin) {
  EXPECT_EQ(run("def len(x):\n    return 99\nresult = len('abc')\n").as_int(), 99);
}

TEST(Interp, MethodsMutateInPlace) {
  EXPECT_EQ(run(R"(
xs = [3, 1]
xs.append(2)
xs.sort()
xs.extend([10])
xs.insert(0, 0)
popped = xs.pop()
result = [xs, popped]
)").repr(), "[[0, 1, 2, 3], 10]");

  EXPECT_EQ(run(R"(
d = {'a': 1}
d.update({'b': 2})
d.setdefault('c', 3)
result = [d.get('b'), d.get('zz', -1), sorted(d.keys())]
)").repr(), "[2, -1, ['a', 'b', 'c']]");
}

TEST(Interp, StringMethods) {
  EXPECT_EQ(ev("'a,b,,c'.split(',')").repr(), "['a', 'b', '', 'c']");
  EXPECT_EQ(ev("'  a b  c '.split()").repr(), "['a', 'b', 'c']");
  EXPECT_EQ(ev("'-'.join(['a', 'b'])").as_str(), "a-b");
  EXPECT_EQ(ev("'MiXeD'.lower()").as_str(), "mixed");
  EXPECT_EQ(ev("' pad '.strip()").as_str(), "pad");
  EXPECT_TRUE(ev("'conda-pack'.startswith('conda')").as_bool());
  EXPECT_EQ(ev("'aXbXc'.replace('X', '-')").as_str(), "a-b-c");
  EXPECT_EQ(ev("'hello'.find('ll')").as_int(), 2);
  EXPECT_EQ(ev("'banana'.count('an')").as_int(), 2);
  EXPECT_TRUE(ev("'123'.isdigit()").as_bool());
}

TEST(Interp, ExceptionsRaiseAndCatch) {
  EXPECT_EQ(run(R"(
def checked_div(a, b):
    if b == 0:
        raise ValueError('b must not be zero')
    return a / b

try:
    checked_div(1, 0)
    result = 'no error'
except ValueError as e:
    result = 'caught'
except:
    result = 'wrong handler'
)").as_str(), "caught");

  EXPECT_EQ(run(R"(
log = []
try:
    log.append('body')
    raise KeyError('k')
except (TypeError, KeyError):
    log.append('handler')
finally:
    log.append('finally')
result = log
)").repr(), "['body', 'handler', 'finally']");

  // Uncaught in-language exceptions surface as PyError.
  Interpreter interp;
  try {
    interp.exec_source("raise RuntimeError('boom')\n");
    FAIL();
  } catch (const PyError& e) {
    EXPECT_EQ(e.type_name, "RuntimeError");
  }
}

TEST(Interp, TryExceptImportErrorFallback) {
  // The exact §V.B pattern: optional dependency with a fallback.
  EXPECT_EQ(run(R"(
try:
    import ujson as json_mod
    result = 'ujson'
except ImportError:
    import json as json_mod
    result = 'stdlib json'
)").as_str(), "stdlib json");
}

TEST(Interp, MathAndJsonModules) {
  Interpreter interp;
  interp.exec_source(R"(
import math
from math import sqrt
root = sqrt(16)
area = math.pi * 2 ** 2
floored = math.floor(3.9)
import json
encoded = json.dumps({'a': [1, 2]})
)");
  EXPECT_DOUBLE_EQ(interp.global("root").as_real(), 4.0);
  EXPECT_NEAR(interp.global("area").as_real(), 12.566, 1e-3);
  EXPECT_EQ(interp.global("floored").as_int(), 3);
  EXPECT_EQ(interp.global("encoded").as_str(), "{\"a\":[1,2]}");
}

TEST(Interp, PrintCaptured) {
  Interpreter interp;
  interp.exec_source("print('hello', 42, [1])\nprint('next')\n");
  EXPECT_EQ(interp.output(), "hello 42 [1]\nnext\n");
  interp.clear_output();
  EXPECT_TRUE(interp.output().empty());
}

TEST(Interp, GlobalStatement) {
  EXPECT_EQ(run(R"(
counter = 0

def bump():
    global counter
    counter += 1

bump()
bump()
result = counter
)").as_int(), 2);
}

TEST(Interp, AssertStatement) {
  EXPECT_NO_THROW(run("assert 1 + 1 == 2\nresult = 1\n"));
  try {
    run("assert 1 == 2, 'math is broken'\nresult = 1\n");
    FAIL();
  } catch (const PyError& e) {
    EXPECT_EQ(e.type_name, "AssertionError");
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
  }
}

TEST(Interp, DelStatement) {
  EXPECT_EQ(run(R"(
xs = [1, 2, 3]
del xs[1]
d = {'a': 1, 'b': 2}
del d['a']
result = [xs, sorted(d.keys())]
)").repr(), "[[1, 3], ['b']]");
  EXPECT_THROW(run("x = 1\ndel x\nresult = x\n"), PyError);
}

TEST(Interp, UnsupportedConstructsRaiseCleanly) {
  EXPECT_THROW(run("class C:\n    pass\nresult = 1\n"), PyError);
  EXPECT_THROW(run("with open('f') as fh:\n    pass\nresult = 1\n"), PyError);
  EXPECT_THROW(run("def g():\n    yield 1\nresult = g()\n"), PyError);
}

TEST(Interp, ValueSemanticsDocumentedDivergence) {
  // ys = xs copies (unlike CPython); mutation of ys leaves xs alone.
  EXPECT_EQ(run(R"(
xs = [1]
ys = xs
ys.append(2)
result = [len(xs), len(ys)]
)").repr(), "[1, 2]");
}

TEST(Interp, RunShippedFunctionSource) {
  // The function-shipping flow: extract a def from "user code", run it in a
  // fresh interpreter with pickled-style args.
  const char* user_module = R"(
import parsl

def process(values, threshold):
    kept = [v for v in values if v >= threshold]
    return {'count': len(kept), 'total': sum(kept)}

def other():
    return 0
)";
  const std::string shipped = extract_function_source(user_module, "process");
  const Value result = run_python_function(
      shipped, "process",
      {Value(ValueList{Value(1), Value(5), Value(10)}), Value(4)});
  EXPECT_EQ(result.at("count").as_int(), 2);
  EXPECT_EQ(result.at("total").as_int(), 15);
}

TEST(Interp, WalrusOperator) {
  EXPECT_EQ(run(R"(
total = 0
values = [1, 2, 3, 4]
i = 0
while (n := len(values) - i) > 0:
    total += n
    i += 1
result = total
)").as_int(), 10);
}

TEST(Interp, StarArgsSpread) {
  Interpreter interp;
  interp.exec_source(R"(
def add3(a, b, c):
    return a + b + c

args = [1, 2, 3]
result = add3(*args)
)");
  EXPECT_EQ(interp.global("result").as_int(), 6);
}

TEST(Interp, SetLiteralDeduplicates) {
  EXPECT_EQ(ev("sorted({3, 1, 3, 2, 1})").repr(), "[1, 2, 3]");
}


TEST(Interp, FStrings) {
  Interpreter interp;
  interp.exec_source(R"(
name = 'theta'
cores = 64
usage = 0.8567
msg = f'site {name} has {cores} cores'
math_field = f'{cores * 2} total'
pct = f'{usage:.1f} load'
braces = f'{{literal}} and {name}'
nested = f'first {sorted([3, 1])[0]}'
)");
  EXPECT_EQ(interp.global("msg").as_str(), "site theta has 64 cores");
  EXPECT_EQ(interp.global("math_field").as_str(), "128 total");
  EXPECT_EQ(interp.global("pct").as_str(), "0.9 load");
  EXPECT_EQ(interp.global("braces").as_str(), "{literal} and theta");
  EXPECT_EQ(interp.global("nested").as_str(), "first 1");
}

TEST(Interp, FStringErrors) {
  EXPECT_THROW(run("result = f'broken {x'\n"), Error);  // unterminated field
  EXPECT_THROW(run("result = f'}'\n"), Error);          // stray close
  EXPECT_THROW(run("result = f'{}'\n"), Error);         // empty expression
}

TEST(Interp, FStringInFunction) {
  const Value v = run(R"(
def report(task, mem):
    return f'task {task}: {mem / 1000000:.1f} MB'

result = report('hep-001', 84000000)
)");
  EXPECT_EQ(v.as_str(), "task hep-001: 84.0 MB");
}

}  // namespace
}  // namespace lfm::pysrc
