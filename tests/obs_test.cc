// Tests for the observability subsystem: recorder gating, the metrics
// registry, exporter round-trips through serde::json (Chrome trace, JSONL),
// the Prometheus golden file, and end-to-end span coverage of the WQ master
// and the real LFM monitor.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "monitor/lfm.h"
#include "obs/clock.h"
#include "obs/collector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "serde/json.h"
#include "util/log.h"
#include "wq/master.h"

namespace lfm::obs {
namespace {

// The recorder is process-global; every test starts disabled and empty and
// leaves no clock, hook, or enabled state behind.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Recorder::global().set_enabled(false);
    Recorder::global().clear();
  }
  void TearDown() override {
    Recorder& r = Recorder::global();
    r.set_enabled(false);
    r.mirror_logs(false);
    r.set_clock(nullptr);
    r.clear();
  }
};

TEST_F(ObsTest, DisabledRecorderRecordsNoEvents) {
  Recorder& r = Recorder::global();
  ASSERT_FALSE(Recorder::enabled());
  r.begin(kPidSim, 1, 0.0, "task", "task");
  r.end(kPidSim, 1, 1.0);
  r.complete(kPidHost, 2, 0.0, 0.5, "analyze", "flow");
  r.instant(kPidSim, 1, 0.5, "label", "alloc");
  r.counter(kPidHost, 1, 0.5, "lfm.usage", "rss_mb", 12.0);
  { ScopedSpan span(kPidHost, 3, "scoped", "test"); }
  EXPECT_EQ(r.event_count(), 0u);
  EXPECT_TRUE(r.events().empty());
}

TEST_F(ObsTest, EnableDisableGatesRecording) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  r.instant(kPidSim, 1, 0.0, "one", "test");
  r.set_enabled(false);
  r.instant(kPidSim, 1, 1.0, "two", "test");
  ASSERT_EQ(r.event_count(), 1u);
  EXPECT_STREQ(r.events()[0].name, "one");
}

TEST_F(ObsTest, InstallableClockDrivesHostTimestamps) {
  Recorder& r = Recorder::global();
  double fake_now = 42.0;
  r.set_clock([&fake_now] { return fake_now; });
  EXPECT_DOUBLE_EQ(r.now(), 42.0);
  fake_now = 43.5;
  EXPECT_DOUBLE_EQ(r.now(), 43.5);
  r.set_clock(nullptr);
  // Default clock: steady wall seconds, monotone non-decreasing.
  const double a = r.now();
  const double b = r.now();
  EXPECT_GE(b, a);
}

TEST_F(ObsTest, MetricsRegistryReturnsStableReferences) {
  Metrics m;
  Counter& c1 = m.counter("wq.tasks");
  Counter& c2 = m.counter("wq.tasks");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  c2.add();
  EXPECT_EQ(c1.value(), 4);

  Gauge& g = m.gauge("wq.queue_depth");
  g.set(17.5);
  EXPECT_DOUBLE_EQ(m.gauge("wq.queue_depth").value(), 17.5);

  HistogramMetric& h1 = m.histogram("wq.run_seconds");
  HistogramMetric& h2 = m.histogram("wq.run_seconds", 1.0, 2.0, 3);  // shape ignored
  EXPECT_EQ(&h1, &h2);
  h1.observe(0.5);
  EXPECT_EQ(h2.snapshot().count(), 1);

  // Snapshots are name-sorted.
  m.counter("alpha").add();
  const auto counters = m.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "wq.tasks");

  // clear() resets values in place; previously returned references survive.
  m.clear();
  EXPECT_EQ(c1.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h1.snapshot().count(), 0);
  c1.add();
  EXPECT_EQ(m.counter("wq.tasks").value(), 1);
}

TEST_F(ObsTest, PrefixedRegistriesNamespaceWithoutTouchingTheDefault) {
  // Co-hosted fed components (a RootMaster plus in-process Foremen) each
  // own a prefixed Metrics instance; the same source-level metric name
  // lands under distinct exported names, and the process-wide default
  // registry — and hence the golden Prometheus exposition — is untouched.
  Metrics root("root."), shard("f1.");
  root.counter("net.results").add(3);
  shard.counter("net.results").add(4);
  shard.gauge("fed.tree_workers").set(8.0);
  shard.histogram("net.rtt").observe(0.25);

  EXPECT_EQ(root.counter("net.results").value(), 3);
  EXPECT_EQ(shard.counter("net.results").value(), 4);

  // Snapshots carry the prefixed names (that is what exporters see).
  const auto root_counters = root.counters();
  ASSERT_EQ(root_counters.size(), 1u);
  EXPECT_EQ(root_counters[0].first, "root.net.results");
  EXPECT_EQ(root_counters[0].second, 3);
  for (const auto& [name, value] : shard.counters()) {
    EXPECT_EQ(name.rfind("f1.", 0), 0u) << name;
  }
  ASSERT_EQ(shard.gauges().size(), 1u);
  EXPECT_EQ(shard.gauges()[0].first, "f1.fed.tree_workers");
  ASSERT_EQ(shard.histograms().size(), 1u);
  EXPECT_EQ(shard.histograms()[0].first, "f1.net.rtt");

  // Repeated lookups return the same instance (reference stability holds
  // per registry, prefixed or not).
  EXPECT_EQ(&root.counter("net.results"), &root.counter("net.results"));
  EXPECT_NE(&root.counter("net.results"), &shard.counter("net.results"));

  // Nothing leaked into the process-wide default registry.
  for (const auto& [name, value] : Recorder::global().metrics().counters()) {
    EXPECT_EQ(name.find("net.results"), std::string::npos) << name;
  }
  EXPECT_TRUE(Recorder::global().metrics().prefix().empty());
}

TEST_F(ObsTest, ChromeTraceRoundTripsThroughSerdeJson) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  r.begin(kPidSim, 7, 1.0, "task", "task");
  r.begin(kPidSim, 7, 1.25, "run", "task");
  r.instant(kPidSim, 7, 1.5, "label", "alloc", "category", "hep", "cores", 2.0);
  r.end(kPidSim, 7, 2.0);
  r.end(kPidSim, 7, 2.5, "outcome", "completed", "attempt", 0.0);
  r.complete(kPidHost, 0, 0.0, 0.125, "flow.analyze_all", "flow", "requests", 3.0);
  r.counter(kPidHost, 7, 0.5, "lfm.usage", "rss_mb", 64.0, "cores", 1.5);

  const serde::Value doc = serde::from_json(chrome_trace_json(r.events()));
  ASSERT_TRUE(doc.is_dict());
  EXPECT_EQ(doc.as_dict().at("displayTimeUnit").as_str(), "ms");
  const auto& list = doc.as_dict().at("traceEvents").as_list();
  ASSERT_EQ(list.size(), r.event_count() + 3);  // + process_name metadata

  // The first three entries label the pid domains.
  for (size_t i = 0; i < 3; ++i) {
    const auto& meta = list[i].as_dict();
    EXPECT_EQ(meta.at("ph").as_str(), "M");
    EXPECT_EQ(meta.at("name").as_str(), "process_name");
  }

  // Every recorded event carries the required fields; timestamps are µs.
  for (size_t i = 3; i < list.size(); ++i) {
    const auto& ev = list[i].as_dict();
    EXPECT_EQ(ev.count("ph"), 1u);
    EXPECT_EQ(ev.count("ts"), 1u);
    EXPECT_EQ(ev.count("pid"), 1u);
    EXPECT_EQ(ev.count("tid"), 1u);
  }
  const auto& task_begin = list[3].as_dict();
  EXPECT_EQ(task_begin.at("ph").as_str(), "B");
  EXPECT_DOUBLE_EQ(task_begin.at("ts").as_real(), 1.0e6);
  EXPECT_EQ(task_begin.at("pid").as_int(), static_cast<int64_t>(kPidSim));
  EXPECT_EQ(task_begin.at("tid").as_int(), 7);

  const auto& instant = list[5].as_dict();
  EXPECT_EQ(instant.at("ph").as_str(), "i");
  EXPECT_EQ(instant.at("s").as_str(), "t");
  EXPECT_EQ(instant.at("args").as_dict().at("category").as_str(), "hep");
  EXPECT_DOUBLE_EQ(instant.at("args").as_dict().at("cores").as_real(), 2.0);

  const auto& outcome_end = list[7].as_dict();
  EXPECT_EQ(outcome_end.at("ph").as_str(), "E");
  EXPECT_EQ(outcome_end.at("args").as_dict().at("outcome").as_str(), "completed");

  const auto& complete = list[8].as_dict();
  EXPECT_EQ(complete.at("ph").as_str(), "X");
  EXPECT_DOUBLE_EQ(complete.at("dur").as_real(), 0.125e6);
}

// Walk a parsed trace and check that, per (pid, tid) lane, B/E events nest:
// depth never goes negative and every lane closes at depth zero.
void check_span_nesting(const serde::Value& doc) {
  std::map<std::pair<int64_t, int64_t>, int> depth;
  for (const auto& item : doc.as_dict().at("traceEvents").as_list()) {
    const auto& ev = item.as_dict();
    const std::string ph = ev.at("ph").as_str();
    if (ph != "B" && ph != "E") continue;
    const auto lane = std::make_pair(ev.at("pid").as_int(), ev.at("tid").as_int());
    if (ph == "B") {
      ++depth[lane];
    } else {
      ASSERT_GT(depth[lane], 0) << "E without open B on tid " << lane.second;
      --depth[lane];
    }
  }
  for (const auto& [lane, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << lane.second;
  }
}

TEST_F(ObsTest, MasterTraceCoversEveryTaskRecord) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);

  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{8, 8e9, 16e9};
  cfg.guess = alloc::Resources{1, 1e9, 2e9};
  cfg.strategy = alloc::Strategy::kGuess;
  alloc::Labeler labeler(cfg);
  wq::Master master(sim, net, labeler);
  master.add_worker({alloc::Resources{8, 8e9, 16e9}, 0.0});
  master.add_worker({alloc::Resources{8, 8e9, 16e9}, 0.0});
  for (uint64_t i = 1; i <= 24; ++i) {
    wq::TaskSpec t;
    t.id = i;
    t.category = "u";
    t.exec_seconds = 20.0;
    t.true_cores = 1.0;
    t.true_peak = alloc::Resources{1.0, 500e6, 1e9};
    master.submit(std::move(t));
  }
  // Exercise the unhappy paths the span state machine must close: a worker
  // crash mid-flight (requeues + cancels) and user cancellations of both a
  // queued and a running task.
  sim.schedule(5.0, [&] { master.crash_worker(0); });
  sim.schedule(1.0, [&] { master.cancel_task(24); });
  sim.schedule(6.0, [&] { master.cancel_task(3); });
  const wq::MasterStats stats = master.run();

  const auto events = r.events();
  ASSERT_GT(events.size(), 0u);

  // Every TaskRecord gets exactly one "task" begin span on its own lane.
  std::map<uint64_t, int> task_begins;
  std::map<uint64_t, int> outcome_ends;
  for (const TraceEvent& ev : events) {
    if (ev.ph == Phase::kBegin && std::string(ev.name ? ev.name : "") == "task") {
      ++task_begins[ev.tid];
    }
    if (ev.ph == Phase::kEnd && ev.skey && std::string(ev.skey) == "outcome") {
      ++outcome_ends[ev.tid];
    }
  }
  ASSERT_EQ(task_begins.size(), master.records().size());
  for (const auto& rec : master.records()) {
    EXPECT_EQ(task_begins[rec.spec.id], 1) << "task " << rec.spec.id;
    EXPECT_EQ(outcome_ends[rec.spec.id], 1) << "task " << rec.spec.id;
  }

  // The exported trace is valid JSON with monotone nesting per lane, even
  // through the crash/cancel paths.
  const serde::Value doc = serde::from_json(chrome_trace_json(events));
  check_span_nesting(doc);

  // Master metrics reconcile with the run's stats.
  Metrics& m = r.metrics();
  EXPECT_EQ(m.counter("wq.tasks_submitted").value(), 24);
  EXPECT_EQ(m.counter("wq.tasks_completed").value(), stats.tasks_completed);
  EXPECT_EQ(m.counter("wq.tasks_cancelled").value(), stats.tasks_cancelled);
  EXPECT_EQ(m.counter("wq.worker_crashes").value(), 1);
  EXPECT_EQ(m.histogram("wq.turnaround_seconds").snapshot().count(),
            stats.tasks_completed);
}

TEST_F(ObsTest, MonitorEmitsSpanAndUsageSeries) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);

  monitor::MonitorOptions options;
  options.poll_interval = 0.01;
  options.trace_tid = 77;
  const auto outcome = monitor::run_monitored(
      [](const serde::Value&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        return serde::Value(int64_t{1});
      },
      serde::Value(), options);
  ASSERT_TRUE(outcome.ok());

  int usage_samples = 0;
  int begins = 0;
  int ends = 0;
  for (const TraceEvent& ev : r.events()) {
    if (ev.pid != kPidHost || ev.tid != 77) continue;
    if (ev.ph == Phase::kCounter && std::string(ev.name) == "lfm.usage") ++usage_samples;
    if (ev.ph == Phase::kBegin && std::string(ev.name) == "lfm.run") ++begins;
    if (ev.ph == Phase::kEnd) ++ends;
  }
  EXPECT_GT(usage_samples, 0);
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(r.metrics().counter("lfm.invocations").value(), 1);
  EXPECT_GT(r.metrics().counter("lfm.polls").value(), 0);
  EXPECT_EQ(r.metrics().histogram("lfm.invocation_seconds").snapshot().count(), 1);
}

TEST_F(ObsTest, PrometheusTextMatchesGoldenFile) {
  Metrics m;
  m.counter("wq.tasks_dispatched").add(128);
  m.counter("lfm.limit-kills").add(3);  // '-' rewrites to '_'
  m.gauge("wq.queue_depth").set(17.5);
  HistogramMetric& h = m.histogram("demo.latency_seconds", 1e-3, 1e3, 12);
  h.observe(0.0005);  // underflow -> bucket 0
  h.observe(0.25);
  h.observe(0.5);
  h.observe(8.0);
  h.observe(5000.0);  // overflow -> last bucket
  const std::string actual = prometheus_text(m);

  const std::string golden_path =
      std::string(LFM_SOURCE_DIR) + "/tests/golden/metrics.prom";
  std::FILE* f = std::fopen(golden_path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "missing golden file " << golden_path;
  std::string golden;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) golden.append(buf, n);
  std::fclose(f);

  EXPECT_EQ(actual, golden) << "regenerate with:\n" << actual;
}

TEST_F(ObsTest, MetricsJsonlRoundTripsThroughSerdeJson) {
  Metrics m;
  m.counter("faas.invocations").add(9);
  m.gauge("wq.queue_depth").set(3.0);
  HistogramMetric& h = m.histogram("flow.resolve_wait_seconds", 1e-3, 1e3, 24);
  h.observe(0.125);
  h.observe(2.0);

  const std::string jsonl = metrics_jsonl(m);
  std::vector<serde::Value> lines;
  size_t start = 0;
  while (start < jsonl.size()) {
    const size_t nl = jsonl.find('\n', start);
    ASSERT_NE(nl, std::string::npos);  // every line is newline-terminated
    lines.push_back(serde::from_json(jsonl.substr(start, nl - start)));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);

  const auto& counter = lines[0].as_dict();
  EXPECT_EQ(counter.at("type").as_str(), "counter");
  EXPECT_EQ(counter.at("name").as_str(), "faas.invocations");
  EXPECT_EQ(counter.at("value").as_int(), 9);

  const auto& gauge = lines[1].as_dict();
  EXPECT_EQ(gauge.at("type").as_str(), "gauge");
  EXPECT_DOUBLE_EQ(gauge.at("value").as_real(), 3.0);

  const auto& hist = lines[2].as_dict();
  EXPECT_EQ(hist.at("type").as_str(), "histogram");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_real(), 2.125);
  EXPECT_DOUBLE_EQ(hist.at("min").as_real(), 0.125);
  EXPECT_DOUBLE_EQ(hist.at("max").as_real(), 2.0);
  EXPECT_EQ(hist.count("p50"), 1u);
  // Sparse buckets: one entry per occupied bucket, aligned with its edge.
  const auto& edges = hist.at("bucket_edges").as_list();
  const auto& counts = hist.at("bucket_counts").as_list();
  ASSERT_EQ(edges.size(), 2u);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].as_int() + counts[1].as_int(), 2);
}

TEST_F(ObsTest, ExportAllWritesLoadableFiles) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  r.begin(kPidSim, 1, 0.0, "task", "task");
  r.end(kPidSim, 1, 1.0);
  r.metrics().counter("wq.tasks_completed").add();

  const std::string dir = ::testing::TempDir() + "obs_export_test";
  export_all(r, dir);

  const auto slurp = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    if (f) {
      char buf[4096];
      size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
      std::fclose(f);
    }
    return out;
  };
  const serde::Value trace = serde::from_json(slurp(dir + "/trace.json"));
  EXPECT_EQ(trace.as_dict().at("traceEvents").as_list().size(), 5u);
  EXPECT_NE(slurp(dir + "/metrics.prom").find("wq_tasks_completed 1"),
            std::string::npos);
  EXPECT_NE(slurp(dir + "/metrics.jsonl").find("wq.tasks_completed"),
            std::string::npos);
}

TEST_F(ObsTest, LogHookMirrorsRecordsAsInstantEvents) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  set_log_sink([](LogLevel, const std::string&, const std::string&) {});  // mute stderr
  r.mirror_logs(true);
  log_message(LogLevel::kWarn, "wq", "cache full");
  r.mirror_logs(false);
  log_message(LogLevel::kWarn, "wq", "not mirrored");
  set_log_sink(nullptr);

  const auto events = r.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ph, Phase::kInstant);
  EXPECT_STREQ(events[0].name, "log");
  EXPECT_STREQ(events[0].sval, "wq: cache full");
  EXPECT_DOUBLE_EQ(events[0].aval0, static_cast<double>(static_cast<int>(LogLevel::kWarn)));
}

TEST_F(ObsTest, LongStringPayloadsTruncateSafely) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  const std::string long_text(200, 'x');
  r.instant(kPidHost, 0, 0.0, "log", "log", "message", long_text);
  const auto events = r.events();
  ASSERT_EQ(events.size(), 1u);
  const std::string stored(events[0].sval);
  EXPECT_EQ(stored.size(), sizeof(TraceEvent::sval) - 1);
  EXPECT_EQ(stored, long_text.substr(0, stored.size()));
  // Still exports as valid JSON.
  serde::from_json(chrome_trace_json(events));
}

TEST_F(ObsTest, SvalTruncationBumpsCounter) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  const int64_t before = r.metrics().counter("obs.sval_truncated").value();
  r.instant(kPidHost, 0, 0.0, "log", "log", "message", std::string(200, 'y'));
  r.instant(kPidHost, 0, 0.0, "log", "log", "message", "short");
  EXPECT_EQ(r.metrics().counter("obs.sval_truncated").value(), before + 1);
}

TEST_F(ObsTest, TraceScopeStampsAndRestores) {
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  r.instant(kPidHost, 0, 0.0, "outside", "test");
  {
    TraceScope outer(0x1111);
    r.instant(kPidHost, 0, 0.1, "outer", "test");
    {
      TraceScope inner(0x2222);
      r.instant(kPidHost, 0, 0.2, "inner", "test");
    }
    r.instant(kPidHost, 0, 0.3, "outer-again", "test");
  }
  r.instant(kPidHost, 0, 0.4, "outside-again", "test");
  const auto events = r.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].trace_id, 0u);
  EXPECT_EQ(events[1].trace_id, 0x1111u);
  EXPECT_EQ(events[2].trace_id, 0x2222u);
  EXPECT_EQ(events[3].trace_id, 0x1111u);
  EXPECT_EQ(events[4].trace_id, 0u);
}

// --- clock-offset estimation -------------------------------------------------

TEST(ClockOffset, FirstSampleInitializesDirectly) {
  ClockOffsetEstimator est;
  EXPECT_DOUBLE_EQ(est.offset(), 0.0);
  // Peer clock runs 10s ahead; symmetric 20ms RTT.
  est.feed(100.0, 110.01, 100.02);
  EXPECT_EQ(est.samples(), 1);
  EXPECT_NEAR(est.offset(), 10.0, 1e-9);
  EXPECT_NEAR(est.last_rtt(), 0.02, 1e-9);
}

TEST(ClockOffset, AsymmetricRttErrorBoundedByHalfRtt) {
  // True offset 5s, but the outbound leg takes 1ms and the return 9ms:
  // ping at t=0 arrives at peer t=5.001, answered immediately, pong back
  // at local t=0.010. Midpoint sample = 5.001 - 0.005 = 4.996 — wrong by
  // 4ms, within rtt/2 = 5ms of truth.
  ClockOffsetEstimator est;
  est.feed(0.0, 5.001, 0.010);
  EXPECT_NEAR(est.offset(), 5.0, est.last_rtt() / 2.0 + 1e-9);
  EXPECT_NEAR(est.offset(), 4.996, 1e-9);
}

TEST(ClockOffset, EwmaSmoothsJitter) {
  ClockOffsetEstimator est(0.125);
  est.feed(0.0, 2.0, 0.0);  // initialize at exactly 2.0
  // Jittered sample: midpoint says 2.4 (within the step threshold).
  est.feed(10.0, 12.4, 10.0);
  EXPECT_NEAR(est.offset(), 2.0 + 0.125 * 0.4, 1e-9);
  EXPECT_EQ(est.samples(), 2);
}

TEST(ClockOffset, ClockStepResetsInsteadOfConverging) {
  ClockOffsetEstimator est;
  for (int i = 0; i < 20; ++i) {
    const double t = i * 1.0;
    est.feed(t, t + 3.0 + 0.005, t + 0.01);  // steady offset 3s, 10ms RTT
  }
  EXPECT_NEAR(est.offset(), 3.0, 1e-6);
  // Peer restarts: its clock now reads 40s ahead. A single post-step
  // sample must snap the estimate, not nudge it by alpha.
  est.feed(30.0, 70.005, 30.01);
  EXPECT_NEAR(est.offset(), 40.0, 1e-6);
}

TEST(ClockOffset, NegativeRttSamplesIgnored) {
  ClockOffsetEstimator est;
  est.feed(5.0, 7.0, 4.0);  // t_recv before t_send: bogus
  EXPECT_EQ(est.samples(), 0);
  EXPECT_DOUBLE_EQ(est.offset(), 0.0);
}

// --- root-side collector -----------------------------------------------------

namespace {
TelemetryEvent make_span(uint64_t trace_id, double ts, double dur,
                         const std::string& name, uint32_t pid = kPidHost) {
  TelemetryEvent ev;
  ev.ph = 'X';
  ev.pid = pid;
  ev.tid = 7;
  ev.trace_id = trace_id;
  ev.ts = ts;
  ev.dur = dur;
  ev.name = name;
  ev.cat = "test";
  return ev;
}
}  // namespace

TEST(Collector, NormalizesClockAndAssignsLanes) {
  Collector c;
  // Worker's clock runs 100s ahead of the root's: a span it recorded at
  // its t=105 really happened at root t=5.
  c.add("w0", 100.0, {make_span(1, 105.0, 0.5, "lfm.run")}, 3);
  c.add("w1", -2.0, {make_span(1, 4.0, 0.25, "lfm.run")});
  Recorder& r = Recorder::global();
  r.set_enabled(true);
  r.complete(kPidHost, 7, 4.5, 2.0, "task", "fed");
  c.add_local("root", r.drain_events());
  r.set_enabled(false);

  EXPECT_EQ(c.event_count(), 3u);
  EXPECT_EQ(c.source_count(), 3u);
  EXPECT_EQ(c.dropped_total(), 3);
  const auto events = c.events();
  std::map<std::string, double> ts_by_source;
  std::map<uint64_t, int> lane_seen;
  for (const auto& ev : events) {
    ++lane_seen[ev.pid];
    if (ev.name == "lfm.run") ts_by_source[ev.cat + std::to_string(ev.ts)] = ev.ts;
  }
  // Three distinct lanes, one per (source, pid-domain).
  EXPECT_EQ(lane_seen.size(), 3u);
  // Normalized timestamps: 105-100=5 and 4-(-2)=6 land inside the root's
  // 4.5..6.5 task span.
  std::vector<double> ts;
  for (const auto& ev : events) ts.push_back(ev.ts);
  std::sort(ts.begin(), ts.end());
  EXPECT_NEAR(ts[0], 4.5, 1e-9);
  EXPECT_NEAR(ts[1], 5.0, 1e-9);
  EXPECT_NEAR(ts[2], 6.0, 1e-9);
}

TEST(Collector, TraceJsonCarriesLaneNamesAndHexTraceIds) {
  Collector c;
  c.add("w0", 0.0, {make_span(0xDEADBEEFull, 1.0, 0.5, "lfm.run")});
  const serde::Value doc = serde::from_json(c.trace_json());
  ASSERT_TRUE(doc.is_dict());
  ASSERT_EQ(doc.as_dict().count("displayTimeUnit"), 1u);
  const auto& events = doc.as_dict().at("traceEvents").as_list();
  bool saw_process_name = false;
  bool saw_hex_id = false;
  for (const auto& item : events) {
    const auto& ev = item.as_dict();
    const std::string ph = ev.at("ph").as_str();
    if (ph == "M") {
      if (ev.at("args").as_dict().at("name").as_str() == "w0") {
        saw_process_name = true;
      }
    }
    if (ph == "X") {
      const auto& args = ev.at("args").as_dict();
      ASSERT_EQ(args.count("trace_id"), 1u);
      EXPECT_EQ(args.at("trace_id").as_str(), "0x00000000deadbeef");
      saw_hex_id = true;
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_hex_id);
}

TEST(Collector, WriteProducesLoadableFile) {
  Collector c;
  c.add("w0", 0.0, {make_span(1, 0.0, 1.0, "lfm.run")});
  const std::string path = "obs_out/collector_test.trace.json";
  c.write(path);
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text(1 << 16, '\0');
  text.resize(std::fread(&text[0], 1, text.size(), f));
  std::fclose(f);
  serde::from_json(text);  // throws if malformed
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lfm::obs
