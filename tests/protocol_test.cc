// Tests for the Work Queue wire protocol codec.
#include <gtest/gtest.h>

#include "wq/protocol.h"

namespace lfm::wq {
namespace {

TaskMessage sample_task() {
  TaskMessage msg;
  msg.task_id = 42;
  msg.category = "hep-analysis";
  msg.command_line = "python lfm_wrapper.py fn.pkl 'arg one' --flag";
  msg.allocation = alloc::Resources{2.0, 1500000000.0, 2000000000.0};
  msg.infiles.push_back({"hep-conda-env.tar.gz", 240000000, true});
  msg.infiles.push_back({"events-00001.root", 500000, false});
  msg.outfiles.push_back("hist-00001.pkl");
  return msg;
}

TEST(Protocol, TaskRoundtrip) {
  const TaskMessage original = sample_task();
  const TaskMessage back = decode_task(encode(original));
  EXPECT_EQ(back.task_id, 42u);
  EXPECT_EQ(back.category, "hep-analysis");
  EXPECT_EQ(back.command_line, original.command_line);
  EXPECT_DOUBLE_EQ(back.allocation.cores, 2.0);
  EXPECT_DOUBLE_EQ(back.allocation.memory_bytes, 1.5e9);
  ASSERT_EQ(back.infiles.size(), 2u);
  EXPECT_EQ(back.infiles[0].name, "hep-conda-env.tar.gz");
  EXPECT_TRUE(back.infiles[0].cacheable);
  EXPECT_FALSE(back.infiles[1].cacheable);
  ASSERT_EQ(back.outfiles.size(), 1u);
  EXPECT_EQ(back.outfiles[0], "hist-00001.pkl");
}

TEST(Protocol, ResultRoundtrip) {
  ResultMessage msg;
  msg.task_id = 7;
  msg.exit_code = 0;
  msg.cores_used = 1.85;
  msg.memory_peak_bytes = 88000000;
  msg.disk_peak_bytes = 880000000;
  msg.wall_seconds = 63.25;
  const ResultMessage back = decode_result(encode(msg));
  EXPECT_EQ(back.task_id, 7u);
  EXPECT_EQ(back.exit_code, 0);
  EXPECT_FALSE(back.exhausted);
  EXPECT_DOUBLE_EQ(back.cores_used, 1.85);
  EXPECT_EQ(back.memory_peak_bytes, 88000000);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 63.25);
}

TEST(Protocol, ExhaustionReport) {
  ResultMessage msg;
  msg.task_id = 9;
  msg.exit_code = -1;
  msg.exhausted = true;
  msg.exhausted_resource = "memory";
  msg.wall_seconds = 10.0;
  const ResultMessage back = decode_result(encode(msg));
  EXPECT_TRUE(back.exhausted);
  EXPECT_EQ(back.exhausted_resource, "memory");
}

TEST(Protocol, CommandEscaping) {
  TaskMessage msg = sample_task();
  msg.command_line = "sh -c 'echo 100% done\ttab\nnewline'";
  const TaskMessage back = decode_task(encode(msg));
  EXPECT_EQ(back.command_line, msg.command_line);
}

TEST(Protocol, WireIsLineOriented) {
  const std::string wire = encode(sample_task());
  EXPECT_EQ(wire.substr(0, 5), "task ");
  EXPECT_EQ(wire.substr(wire.size() - 4), "end\n");
  // One stanza per line; no raw spaces inside the cmd payload.
  EXPECT_NE(wire.find("\ninfile hep-conda-env.tar.gz 240000000 1\n"),
            std::string::npos);
}

TEST(Protocol, RejectsUnterminated) {
  std::string wire = encode(sample_task());
  wire = wire.substr(0, wire.size() - 4);  // chop "end\n"
  EXPECT_THROW(decode_task(wire), Error);
}

TEST(Protocol, RejectsWrongMessageKind) {
  EXPECT_THROW(decode_result(encode(sample_task())), Error);
  ResultMessage r;
  r.task_id = 1;
  r.wall_seconds = 1.0;
  EXPECT_THROW(decode_task(encode(r)), Error);
}

TEST(Protocol, RejectsUnknownStanza) {
  EXPECT_THROW(decode_task("task 1 cat\nbogus stanza\nend\n"), Error);
}

TEST(Protocol, RejectsMissingAllocOrUsage) {
  EXPECT_THROW(decode_task("task 1 cat\ncmd x\nend\n"), Error);
  EXPECT_THROW(decode_result("result 1 0\nend\n"), Error);
}

TEST(Protocol, RejectsMalformedNumbers) {
  EXPECT_THROW(decode_task("task abc cat\nalloc 1 1 1\nend\n"), Error);
  EXPECT_THROW(decode_task("task 1 cat\nalloc x 1 1\nend\n"), Error);
  EXPECT_THROW(decode_result("result 1 0\nusage 1 nope 1 1\nend\n"), Error);
}

TEST(Protocol, RejectsInvalidTokens) {
  TaskMessage msg = sample_task();
  msg.category = "has space";
  EXPECT_THROW(encode(msg), Error);
  msg = sample_task();
  msg.infiles[0].name = "bad\nname";
  EXPECT_THROW(encode(msg), Error);
}

TEST(Protocol, ValidTokenRules) {
  EXPECT_TRUE(valid_token("env.tar.gz"));
  EXPECT_TRUE(valid_token("a-b_c.1"));
  EXPECT_FALSE(valid_token(""));
  EXPECT_FALSE(valid_token("a b"));
  EXPECT_FALSE(valid_token("a\tb"));
}

TEST(Protocol, FieldCountValidation) {
  EXPECT_THROW(decode_task("task 1\nalloc 1 1 1\nend\n"), Error);
  EXPECT_THROW(decode_task("task 1 cat extra_field\nalloc 1 1 1\nend\n"), Error);
}

}  // namespace
}  // namespace lfm::wq
