// Tests for the Work Queue wire protocol codec, both wire versions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wq/protocol.h"

namespace lfm::wq {
namespace {

TaskMessage sample_task() {
  TaskMessage msg;
  msg.task_id = 42;
  msg.category = "hep-analysis";
  msg.command_line = "python lfm_wrapper.py fn.pkl 'arg one' --flag";
  msg.allocation = alloc::Resources{2.0, 1500000000.0, 2000000000.0};
  msg.infiles.push_back({"hep-conda-env.tar.gz", 240000000, true});
  msg.infiles.push_back({"events-00001.root", 500000, false});
  msg.outfiles.push_back("hist-00001.pkl");
  return msg;
}

ResultMessage sample_result() {
  ResultMessage msg;
  msg.task_id = 7;
  msg.exit_code = 0;
  msg.cores_used = 1.85;
  msg.memory_peak_bytes = 88000000;
  msg.disk_peak_bytes = 880000000;
  msg.wall_seconds = 63.25;
  msg.payload = serde::Bytes{0x00, 0xFF, 0x7A, 0x0A, 0x20, 0xF7};
  return msg;
}

class ProtocolBothVersions : public ::testing::TestWithParam<WireVersion> {};

INSTANTIATE_TEST_SUITE_P(Versions, ProtocolBothVersions,
                         ::testing::Values(WireVersion::kV1, WireVersion::kV2));

TEST_P(ProtocolBothVersions, TaskRoundtrip) {
  const TaskMessage original = sample_task();
  const std::string wire = encode(original, GetParam());
  EXPECT_EQ(detect_version(wire), GetParam());
  const TaskMessage back = decode_task(wire);
  EXPECT_EQ(back.task_id, 42u);
  EXPECT_EQ(back.category, "hep-analysis");
  EXPECT_EQ(back.command_line, original.command_line);
  EXPECT_DOUBLE_EQ(back.allocation.cores, 2.0);
  EXPECT_DOUBLE_EQ(back.allocation.memory_bytes, 1.5e9);
  ASSERT_EQ(back.infiles.size(), 2u);
  EXPECT_EQ(back.infiles[0].name, "hep-conda-env.tar.gz");
  EXPECT_EQ(back.infiles[0].size_bytes, 240000000);
  EXPECT_TRUE(back.infiles[0].cacheable);
  EXPECT_FALSE(back.infiles[1].cacheable);
  ASSERT_EQ(back.outfiles.size(), 1u);
  EXPECT_EQ(back.outfiles[0], "hist-00001.pkl");
}

TEST_P(ProtocolBothVersions, ResultRoundtrip) {
  const ResultMessage msg = sample_result();
  const std::string wire = encode(msg, GetParam());
  EXPECT_EQ(detect_version(wire), GetParam());
  const ResultMessage back = decode_result(wire);
  EXPECT_EQ(back.task_id, 7u);
  EXPECT_EQ(back.exit_code, 0);
  EXPECT_FALSE(back.exhausted);
  EXPECT_DOUBLE_EQ(back.cores_used, 1.85);
  EXPECT_EQ(back.memory_peak_bytes, 88000000);
  EXPECT_DOUBLE_EQ(back.wall_seconds, 63.25);
  EXPECT_EQ(back.payload, msg.payload);
}

TEST_P(ProtocolBothVersions, ExhaustionReport) {
  ResultMessage msg;
  msg.task_id = 9;
  msg.exit_code = -1;
  msg.exhausted = true;
  msg.exhausted_resource = "memory";
  msg.wall_seconds = 10.0;
  const ResultMessage back = decode_result(encode(msg, GetParam()));
  EXPECT_TRUE(back.exhausted);
  EXPECT_EQ(back.exhausted_resource, "memory");
  EXPECT_EQ(back.exit_code, -1);
}

TEST_P(ProtocolBothVersions, CommandEscaping) {
  TaskMessage msg = sample_task();
  msg.command_line = "sh -c 'echo 100% done\ttab\nnewline'";
  const TaskMessage back = decode_task(encode(msg, GetParam()));
  EXPECT_EQ(back.command_line, msg.command_line);
}

TEST_P(ProtocolBothVersions, EncodedSizeMatchesEncode) {
  const TaskMessage t = sample_task();
  const ResultMessage r = sample_result();
  EXPECT_EQ(encoded_size(t, GetParam()), encode(t, GetParam()).size());
  EXPECT_EQ(encoded_size(r, GetParam()), encode(r, GetParam()).size());
}

TEST_P(ProtocolBothVersions, RejectsInvalidTokens) {
  TaskMessage msg = sample_task();
  msg.category = "has space";
  EXPECT_THROW(encode(msg, GetParam()), Error);
  msg = sample_task();
  msg.infiles[0].name = "bad\nname";
  EXPECT_THROW(encode(msg, GetParam()), Error);
}

TEST_P(ProtocolBothVersions, TaskBatchRoundtrip) {
  std::vector<TaskMessage> batch;
  for (int i = 0; i < 5; ++i) {
    TaskMessage msg = sample_task();
    msg.task_id = 100 + static_cast<uint64_t>(i);
    msg.command_line = "run step " + std::to_string(i);
    batch.push_back(std::move(msg));
  }
  const std::vector<TaskMessage> back = decode_task_batch(encode_batch(batch, GetParam()));
  ASSERT_EQ(back.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back[static_cast<size_t>(i)].task_id, 100u + static_cast<uint64_t>(i));
    EXPECT_EQ(back[static_cast<size_t>(i)].command_line, "run step " + std::to_string(i));
  }
}

TEST_P(ProtocolBothVersions, ResultBatchRoundtrip) {
  std::vector<ResultMessage> batch;
  for (int i = 0; i < 4; ++i) {
    ResultMessage msg = sample_result();
    msg.task_id = 200 + static_cast<uint64_t>(i);
    batch.push_back(std::move(msg));
  }
  const std::vector<ResultMessage> back =
      decode_result_batch(encode_batch(batch, GetParam()));
  ASSERT_EQ(back.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(back[static_cast<size_t>(i)].task_id, 200u + static_cast<uint64_t>(i));
    EXPECT_EQ(back[static_cast<size_t>(i)].payload, sample_result().payload);
  }
}

TEST_P(ProtocolBothVersions, SingleMessageDecodesAsBatchOfOne) {
  const std::vector<TaskMessage> back =
      decode_task_batch(encode(sample_task(), GetParam()));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].task_id, 42u);
}

// A v1 peer and a v2 peer exchange the same logical messages: encoding in
// one version and re-encoding the decoded message in the other must be
// lossless in both directions.
TEST(Protocol, CrossVersionDecode) {
  const TaskMessage t = sample_task();
  const TaskMessage via_v1 = decode_task(encode(t, WireVersion::kV1));
  const TaskMessage via_v2 = decode_task(encode(via_v1, WireVersion::kV2));
  EXPECT_EQ(via_v2.task_id, t.task_id);
  EXPECT_EQ(via_v2.command_line, t.command_line);
  EXPECT_EQ(encode(via_v2, WireVersion::kV1), encode(t, WireVersion::kV1));

  const ResultMessage r = sample_result();
  const ResultMessage rv2 = decode_result(encode(r, WireVersion::kV2));
  EXPECT_EQ(encode(rv2, WireVersion::kV1), encode(r, WireVersion::kV1));
  const ResultMessage rv1 = decode_result(encode(r, WireVersion::kV1));
  EXPECT_EQ(encode(rv1, WireVersion::kV2), encode(r, WireVersion::kV2));
}

TEST(Protocol, DetectVersion) {
  EXPECT_EQ(detect_version(encode(sample_task(), WireVersion::kV1)), WireVersion::kV1);
  EXPECT_EQ(detect_version(encode(sample_task(), WireVersion::kV2)), WireVersion::kV2);
  EXPECT_THROW(detect_version(""), Error);
}

TEST(Protocol, V2IsSmallerOnPayloadBearingResults) {
  ResultMessage msg = sample_result();
  msg.payload.assign(4096, 0xAB);  // incompressible-looking raw bytes
  const size_t v1 = encode(msg, WireVersion::kV1).size();
  const size_t v2 = encode(msg, WireVersion::kV2).size();
  // v1 base64 inflates the payload by 4/3; v2 ships it raw.
  EXPECT_LT(v2, v1 * 3 / 4);
}

TEST(Protocol, WireIsLineOriented) {
  const std::string wire = encode(sample_task(), WireVersion::kV1);
  EXPECT_EQ(wire.substr(0, 5), "task ");
  EXPECT_EQ(wire.substr(wire.size() - 4), "end\n");
  // One stanza per line; no raw spaces inside the cmd payload.
  EXPECT_NE(wire.find("\ninfile hep-conda-env.tar.gz 240000000 1\n"),
            std::string::npos);
}

TEST(Protocol, RejectsUnterminated) {
  std::string wire = encode(sample_task(), WireVersion::kV1);
  wire = wire.substr(0, wire.size() - 4);  // chop "end\n"
  EXPECT_THROW(decode_task(wire), Error);
}

TEST(Protocol, RejectsTruncatedFrame) {
  const std::string wire = encode(sample_task(), WireVersion::kV2);
  for (const size_t keep : {size_t{1}, size_t{3}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(decode_task(wire.substr(0, keep)), Error) << "keep=" << keep;
  }
  // Trailing garbage after the frame body is also an error.
  EXPECT_THROW(decode_task(wire + "x"), Error);
}

TEST(Protocol, RejectsWrongMessageKind) {
  for (const WireVersion v : {WireVersion::kV1, WireVersion::kV2}) {
    EXPECT_THROW(decode_result(encode(sample_task(), v)), Error);
    ResultMessage r;
    r.task_id = 1;
    r.wall_seconds = 1.0;
    EXPECT_THROW(decode_task(encode(r, v)), Error);
  }
}

TEST(Protocol, RejectsUnknownStanza) {
  EXPECT_THROW(decode_task("task 1 cat\nbogus stanza\nend\n"), Error);
}

TEST(Protocol, RejectsMissingAllocOrUsage) {
  EXPECT_THROW(decode_task("task 1 cat\ncmd x\nend\n"), Error);
  EXPECT_THROW(decode_result("result 1 0\nend\n"), Error);
}

TEST(Protocol, RejectsMalformedNumbers) {
  EXPECT_THROW(decode_task("task abc cat\nalloc 1 1 1\nend\n"), Error);
  EXPECT_THROW(decode_task("task 1 cat\nalloc x 1 1\nend\n"), Error);
  EXPECT_THROW(decode_result("result 1 0\nusage 1 nope 1 1\nend\n"), Error);
}

// Regression: v1 integer fields (peak bytes, infile sizes, exit codes) used
// to be parsed through the double path, which silently rounds above 2^53.
// 2^53 + 1 is the first integer a double cannot represent.
TEST(Protocol, V1IntegerFieldsExactAboveDoubleRange) {
  constexpr int64_t kBoundary = (int64_t{1} << 53) + 1;
  ResultMessage r;
  r.task_id = 1;
  r.memory_peak_bytes = kBoundary;
  r.disk_peak_bytes = kBoundary + 2;
  r.wall_seconds = 1.0;
  const ResultMessage back = decode_result(encode(r, WireVersion::kV1));
  EXPECT_EQ(back.memory_peak_bytes, kBoundary);
  EXPECT_EQ(back.disk_peak_bytes, kBoundary + 2);

  TaskMessage t = sample_task();
  t.infiles[0].size_bytes = kBoundary;
  const TaskMessage tback = decode_task(encode(t, WireVersion::kV1));
  EXPECT_EQ(tback.infiles[0].size_bytes, kBoundary);
}

TEST(Protocol, V1NegativeIntegerFields) {
  ResultMessage r;
  r.task_id = 3;
  r.exit_code = -9;  // killed by SIGKILL
  r.wall_seconds = 0.5;
  const ResultMessage back = decode_result(encode(r, WireVersion::kV1));
  EXPECT_EQ(back.exit_code, -9);
}

// Regression: the v1 integer parser multiplied without an overflow check,
// so a 25-digit field wrapped around and decoded as garbage.
TEST(Protocol, V1RejectsOverflowingIntegers) {
  const std::string huge(25, '9');
  EXPECT_THROW(decode_task("task " + huge + " cat\nalloc 1 1 1\nend\n"), Error);
  EXPECT_THROW(
      decode_result("result 1 0\nusage 1 " + huge + " 1 1\nend\n"), Error);
  // INT64_MAX itself still parses.
  const ResultMessage ok = decode_result(
      "result 1 0\nusage 1.0 9223372036854775807 0 1.0\nend\n");
  EXPECT_EQ(ok.memory_peak_bytes, INT64_MAX);
  // One past it does not.
  EXPECT_THROW(
      decode_result("result 1 0\nusage 1.0 9223372036854775808 0 1.0\nend\n"),
      Error);
}

TEST(Protocol, ValidTokenRules) {
  EXPECT_TRUE(valid_token("env.tar.gz"));
  EXPECT_TRUE(valid_token("a-b_c.1"));
  EXPECT_FALSE(valid_token(""));
  EXPECT_FALSE(valid_token("a b"));
  EXPECT_FALSE(valid_token("a\tb"));
}

TEST(Protocol, FieldCountValidation) {
  EXPECT_THROW(decode_task("task 1\nalloc 1 1 1\nend\n"), Error);
  EXPECT_THROW(decode_task("task 1 cat extra_field\nalloc 1 1 1\nend\n"), Error);
}

TEST(Protocol, BatchSizeArithmeticMatchesEncoder) {
  std::vector<TaskMessage> batch;
  size_t prefixed = 0;
  for (int i = 0; i < 3; ++i) {
    TaskMessage msg = sample_task();
    msg.task_id = 1000 + static_cast<uint64_t>(i);
    msg.outfiles.clear();  // task_body_size_v2 covers only unnamed outfiles
    const size_t body = task_body_size_v2(msg.task_id, msg.category,
                                          msg.command_line, msg.allocation,
                                          {{"hep-conda-env.tar.gz", 240000000, true},
                                           {"events-00001.root", 500000, false}},
                                          0);
    prefixed += batch_entry_size(body);
    batch.push_back(std::move(msg));
  }
  EXPECT_EQ(batch_frame_size(batch.size(), prefixed),
            encode_batch(batch, WireVersion::kV2).size());
}

TEST_P(ProtocolBothVersions, HelloRoundtrip) {
  HelloMessage msg;
  msg.worker_name = "node-17.cluster";
  msg.preferred = WireVersion::kV1;
  msg.capacity = alloc::Resources{16.0, 64e9, 500e9};
  const std::string wire = encode(msg, GetParam());
  EXPECT_EQ(detect_version(wire), GetParam());
  EXPECT_EQ(classify(wire), MessageKind::kHello);
  const HelloMessage back = decode_hello(wire);
  EXPECT_EQ(back.worker_name, "node-17.cluster");
  EXPECT_EQ(back.preferred, WireVersion::kV1);
  EXPECT_DOUBLE_EQ(back.capacity.cores, 16.0);
  EXPECT_DOUBLE_EQ(back.capacity.memory_bytes, 64e9);
}

TEST_P(ProtocolBothVersions, FileRoundtrip) {
  FileMessage msg;
  msg.name = "fn-7.py";
  msg.cacheable = true;
  msg.content = serde::Bytes{0x00, 0x0A, 0xF7, 'e', 'n', 'd', '\n', 0xFF};
  const std::string wire = encode(msg, GetParam());
  EXPECT_EQ(classify(wire), MessageKind::kFile);
  const FileMessage back = decode_file(wire);
  EXPECT_EQ(back.name, "fn-7.py");
  EXPECT_TRUE(back.cacheable);
  EXPECT_EQ(back.content, msg.content);

  FileMessage empty;
  empty.name = "empty.pkl";
  const FileMessage back2 = decode_file(encode(empty, GetParam()));
  EXPECT_TRUE(back2.content.empty());
  EXPECT_FALSE(back2.cacheable);
}

TEST_P(ProtocolBothVersions, ControlRoundtrip) {
  for (ControlType type :
       {ControlType::kPing, ControlType::kPong, ControlType::kBye}) {
    ControlMessage msg{type, 12345678901234ull, 1722.034512345};
    const std::string wire = encode(msg, GetParam());
    EXPECT_EQ(classify(wire), MessageKind::kControl);
    const ControlMessage back = decode_control(wire);
    EXPECT_EQ(back.type, type);
    EXPECT_EQ(back.nonce, 12345678901234ull);
    EXPECT_DOUBLE_EQ(back.timestamp, 1722.034512345);
  }
}

TEST_P(ProtocolBothVersions, StatsRoundtrip) {
  StatsMessage msg;
  msg.source = "foreman-3";
  msg.workers = 12;
  msg.pending = 345;
  msg.completed = 678901;
  msg.fanout_bytes = 9876543210;
  msg.fanout_files = 4321;
  msg.cache_chunks = 512;
  msg.cache_bytes = 1073741824;
  const std::string wire = encode(msg, GetParam());
  EXPECT_EQ(classify(wire), MessageKind::kStats);
  const StatsMessage back = decode_stats(wire);
  EXPECT_EQ(back.source, "foreman-3");
  EXPECT_EQ(back.workers, 12);
  EXPECT_EQ(back.pending, 345);
  EXPECT_EQ(back.completed, 678901);
  EXPECT_EQ(back.fanout_bytes, 9876543210);
  EXPECT_EQ(back.fanout_files, 4321);
  EXPECT_EQ(back.cache_chunks, 512);
  EXPECT_EQ(back.cache_bytes, 1073741824);

  // Default-valued telemetry still names its source; an empty source is
  // rejected (it would make the root's per-shard bookkeeping ambiguous).
  StatsMessage minimal;
  minimal.source = "f";
  const StatsMessage back2 = decode_stats(encode(minimal, GetParam()));
  EXPECT_EQ(back2.source, "f");
  EXPECT_EQ(back2.workers, 0);
  StatsMessage anonymous;
  EXPECT_THROW(decode_stats(encode(anonymous, GetParam())), Error);
}

TEST(Protocol, ClassifyDistinguishesEveryKind) {
  for (WireVersion v : {WireVersion::kV1, WireVersion::kV2}) {
    EXPECT_EQ(classify(encode(sample_task(), v)), MessageKind::kTask);
    EXPECT_EQ(classify(encode(sample_result(), v)), MessageKind::kResult);
    EXPECT_EQ(classify(encode(HelloMessage{"w", WireVersion::kV2, {}}, v)),
              MessageKind::kHello);
    EXPECT_EQ(classify(encode(FileMessage{"f", false, {}}, v)),
              MessageKind::kFile);
    EXPECT_EQ(classify(encode(ControlMessage{}, v)), MessageKind::kControl);
    EXPECT_EQ(classify(encode(StatsMessage{"f", 1, 0, 0, 0, 0, 0, 0}, v)),
              MessageKind::kStats);
  }
  EXPECT_EQ(classify(encode_batch(std::vector<TaskMessage>{sample_task(),
                                                           sample_task()})),
            MessageKind::kTaskBatch);
  EXPECT_EQ(classify(encode_batch(std::vector<ResultMessage>{sample_result(),
                                                             sample_result()})),
            MessageKind::kResultBatch);
  EXPECT_THROW(classify(""), Error);
  EXPECT_THROW(classify("bogus 1 2\nend\n"), Error);
}

// --- distributed tracing extensions ------------------------------------------

TEST(Protocol, TraceIdRoundTripsOnV2TaskAndResult) {
  TaskMessage t = sample_task();
  t.trace_id = 0xDEADBEEFCAFE1234ull;
  t.parent_span = 77;
  const TaskMessage tback = decode_task(encode(t, WireVersion::kV2));
  EXPECT_EQ(tback.trace_id, 0xDEADBEEFCAFE1234ull);
  EXPECT_EQ(tback.parent_span, 77u);

  ResultMessage r = sample_result();
  r.trace_id = 0xDEADBEEFCAFE1234ull;
  const ResultMessage rback = decode_result(encode(r, WireVersion::kV2));
  EXPECT_EQ(rback.trace_id, 0xDEADBEEFCAFE1234ull);
}

TEST(Protocol, UntracedFramesCarryNoExtensionBytes) {
  // trace_id == 0 must leave the encoding byte-identical to a codec that
  // never heard of tracing: the extension is trailing and conditional.
  TaskMessage t = sample_task();
  const std::string before = encode(t, WireVersion::kV2);
  t.trace_id = 0;
  t.parent_span = 0;
  EXPECT_EQ(encode(t, WireVersion::kV2), before);
  t.trace_id = 5;
  EXPECT_GT(encode(t, WireVersion::kV2).size(), before.size());
  // Decoding the untraced frame leaves the fields defaulted.
  const TaskMessage back = decode_task(before);
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_EQ(back.parent_span, 0u);
}

TEST(Protocol, V1DropsTraceIdsGracefully) {
  // v1 has no extension slot: the ids simply don't travel — old peers see
  // exactly the frames they always saw.
  TaskMessage t = sample_task();
  t.trace_id = 123;
  t.parent_span = 9;
  const TaskMessage back = decode_task(encode(t, WireVersion::kV1));
  EXPECT_EQ(back.trace_id, 0u);
  ResultMessage r = sample_result();
  r.trace_id = 123;
  EXPECT_EQ(decode_result(encode(r, WireVersion::kV1)).trace_id, 0u);
}

TEST(Protocol, TracedBatchEntriesStayBounded) {
  // The regression this guards: per-entry extension reads must not consume
  // the next entry's bytes in a batch frame. Mix traced and untraced.
  std::vector<TaskMessage> tasks{sample_task(), sample_task(), sample_task()};
  tasks[0].trace_id = 1111;
  tasks[2].trace_id = 3333;
  tasks[2].parent_span = 4;
  const std::vector<TaskMessage> back =
      decode_task_batch(encode_batch(tasks, WireVersion::kV2));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].trace_id, 1111u);
  EXPECT_EQ(back[1].trace_id, 0u);
  EXPECT_EQ(back[2].trace_id, 3333u);
  EXPECT_EQ(back[2].parent_span, 4u);

  std::vector<ResultMessage> results{sample_result(), sample_result()};
  results[1].trace_id = 2222;
  const std::vector<ResultMessage> rback =
      decode_result_batch(encode_batch(results, WireVersion::kV2));
  ASSERT_EQ(rback.size(), 2u);
  EXPECT_EQ(rback[0].trace_id, 0u);
  EXPECT_EQ(rback[1].trace_id, 2222u);
}

TEST(Protocol, EncodedSizeCoversTraceExtensions) {
  TaskMessage t = sample_task();
  t.trace_id = 0xFFFFFFFFFFFFFFFFull;  // max-width varint
  t.parent_span = 1;
  EXPECT_EQ(encoded_size(t, WireVersion::kV2),
            encode(t, WireVersion::kV2).size());
  ResultMessage r = sample_result();
  r.trace_id = 300;
  EXPECT_EQ(encoded_size(r, WireVersion::kV2),
            encode(r, WireVersion::kV2).size());
}

TEST_P(ProtocolBothVersions, ControlPeerTimeRoundtrip) {
  ControlMessage ping{ControlType::kPong, 42, 1234.5};
  ping.peer_time = 987.654321;
  const ControlMessage back = decode_control(encode(ping, GetParam()));
  EXPECT_DOUBLE_EQ(back.peer_time, 987.654321);
  // Absent field decodes as zero — and adds no bytes to the frame.
  ControlMessage plain{ControlType::kPong, 42, 1234.5};
  const std::string wire = encode(plain, GetParam());
  EXPECT_LT(wire.size(), encode(ping, GetParam()).size());
  EXPECT_DOUBLE_EQ(decode_control(wire).peer_time, 0.0);
}

TEST(Protocol, TelemetryRoundtrip) {
  TelemetryMessage msg;
  msg.source = "worker-3";
  msg.process_id = 4242;
  msg.clock_offset = -0.125;
  msg.dropped = 17;
  obs::TelemetryEvent ev;
  ev.ph = 'X';
  ev.pid = 2;
  ev.tid = 99;
  ev.trace_id = 0xABCDEF0123456789ull;
  ev.ts = 12.5;
  ev.dur = 0.25;
  ev.name = "lfm.run";
  ev.cat = "worker";
  ev.akey0 = "rss_mb";
  ev.aval0 = 88.0;
  ev.skey = "outcome";
  ev.sval = "success";
  msg.events.push_back(ev);
  obs::TelemetryEvent instant;
  instant.ph = 'i';
  instant.name = "net.dispatch";
  instant.cat = "net";
  msg.events.push_back(instant);
  msg.counters.push_back({"net.results", 12});
  msg.gauges.push_back({"net.write_queue_bytes", 4096.0});

  const std::string wire = encode(msg, WireVersion::kV2);
  EXPECT_EQ(classify(wire), MessageKind::kTelemetry);
  const TelemetryMessage back = decode_telemetry(wire);
  EXPECT_EQ(back.source, "worker-3");
  EXPECT_EQ(back.process_id, 4242u);
  EXPECT_DOUBLE_EQ(back.clock_offset, -0.125);
  EXPECT_EQ(back.dropped, 17);
  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.events[0].ph, 'X');
  EXPECT_EQ(back.events[0].trace_id, 0xABCDEF0123456789ull);
  EXPECT_DOUBLE_EQ(back.events[0].ts, 12.5);
  EXPECT_DOUBLE_EQ(back.events[0].dur, 0.25);
  EXPECT_EQ(back.events[0].name, "lfm.run");
  EXPECT_EQ(back.events[0].akey0, "rss_mb");
  EXPECT_DOUBLE_EQ(back.events[0].aval0, 88.0);
  EXPECT_EQ(back.events[0].skey, "outcome");
  EXPECT_EQ(back.events[0].sval, "success");
  EXPECT_EQ(back.events[1].ph, 'i');
  EXPECT_EQ(back.events[1].name, "net.dispatch");
  ASSERT_EQ(back.counters.size(), 1u);
  EXPECT_EQ(back.counters[0].first, "net.results");
  EXPECT_EQ(back.counters[0].second, 12);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(back.gauges[0].second, 4096.0);
}

TEST(Protocol, TelemetryRequiresV2) {
  TelemetryMessage msg;
  msg.source = "w";
  EXPECT_THROW(encode(msg, WireVersion::kV1), Error);
  TelemetryMessage bad;  // empty source fails validation
  EXPECT_THROW(encode(bad, WireVersion::kV2), Error);
}

TEST(Protocol, OversizedFrameLengthRejectedBeforeAllocation) {
  // A hostile header claiming a body far past the cap: magic, version, type,
  // then a varint length of ~2^62 bytes. The decoder must reject it from the
  // header alone — it cannot wait for (or try to buffer) the claimed body.
  const std::string wire{'\xF7', 'Q', 2, 1,
                         '\xFF', '\xFF', '\xFF', '\xFF', '\xFF',
                         '\xFF', '\xFF', '\xFF', '\x3F'};
  EXPECT_THROW(decode_task(wire), Error);
  try {
    decode_task(wire);
    FAIL() << "oversized frame accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds"), std::string::npos);
  }
}

TEST(Protocol, FrameBodyLimitIsConfigurable) {
  EXPECT_EQ(max_frame_body_bytes(), kDefaultMaxFrameBodyBytes);
  set_max_frame_body_bytes(256);
  FileMessage big;
  big.name = "blob";
  big.content.assign(1024, 0xAB);
  const std::string wire = encode(big, WireVersion::kV2);
  EXPECT_THROW(decode_file(wire), Error);
  // Raising the limit back admits the same bytes.
  set_max_frame_body_bytes(0);  // 0 restores the default
  EXPECT_EQ(max_frame_body_bytes(), kDefaultMaxFrameBodyBytes);
  const FileMessage back = decode_file(wire);
  EXPECT_EQ(back.content.size(), 1024u);
}

}  // namespace
}  // namespace lfm::wq
