// Unit tests for the mini-Python lexer: token classes, indentation handling,
// string forms, continuations, and error reporting.
#include <gtest/gtest.h>

#include "pysrc/lexer.h"

namespace lfm::pysrc {
namespace {

std::vector<Token> lex(const std::string& src) { return tokenize(src); }

std::vector<TokenKind> kinds(const std::vector<Token>& toks) {
  std::vector<TokenKind> out;
  for (const auto& t : toks) out.push_back(t.kind);
  return out;
}

TEST(Lexer, SimpleStatement) {
  const auto toks = lex("x = 1\n");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kName);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_TRUE(toks[1].is_op("="));
  EXPECT_EQ(toks[2].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[3].kind, TokenKind::kNewline);
  EXPECT_EQ(toks[4].kind, TokenKind::kEnd);
}

TEST(Lexer, KeywordsRecognized) {
  const auto toks = lex("import numpy\n");
  EXPECT_EQ(toks[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks[0].text, "import");
  EXPECT_EQ(toks[1].kind, TokenKind::kName);
}

TEST(Lexer, IndentDedent) {
  const auto toks = lex("if x:\n    y = 1\nz = 2\n");
  const auto k = kinds(toks);
  // if x : NEWLINE INDENT y = 1 NEWLINE DEDENT z = 2 NEWLINE END
  EXPECT_EQ(k, (std::vector<TokenKind>{
                   TokenKind::kKeyword, TokenKind::kName, TokenKind::kOp,
                   TokenKind::kNewline, TokenKind::kIndent, TokenKind::kName,
                   TokenKind::kOp, TokenKind::kNumber, TokenKind::kNewline,
                   TokenKind::kDedent, TokenKind::kName, TokenKind::kOp,
                   TokenKind::kNumber, TokenKind::kNewline, TokenKind::kEnd}));
}

TEST(Lexer, NestedIndentationClosesAtEof) {
  const auto toks = lex("def f():\n  if x:\n    return 1");
  int indents = 0, dedents = 0;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::kIndent) ++indents;
    if (t.kind == TokenKind::kDedent) ++dedents;
  }
  EXPECT_EQ(indents, 2);
  EXPECT_EQ(dedents, 2);
  EXPECT_EQ(toks.back().kind, TokenKind::kEnd);
}

TEST(Lexer, BlankLinesAndCommentsIgnored) {
  const auto toks = lex("x = 1\n\n# comment only\n   \ny = 2\n");
  int newlines = 0;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::kNewline) ++newlines;
  }
  EXPECT_EQ(newlines, 2);  // one per real statement
}

TEST(Lexer, TrailingCommentOnLine) {
  const auto toks = lex("x = 1  # set x\n");
  EXPECT_EQ(toks[3].kind, TokenKind::kNewline);
}

TEST(Lexer, ImplicitContinuationInBrackets) {
  const auto toks = lex("f(a,\n  b)\n");
  // No NEWLINE between a and b.
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "a") {
      EXPECT_TRUE(toks[i + 1].is_op(","));
      EXPECT_EQ(toks[i + 2].kind, TokenKind::kName);
    }
  }
}

TEST(Lexer, ExplicitBackslashContinuation) {
  const auto toks = lex("x = 1 + \\\n    2\n");
  int newlines = 0;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::kNewline) ++newlines;
  }
  EXPECT_EQ(newlines, 1);
}

TEST(Lexer, StringForms) {
  auto toks = lex("a = 'single'\n");
  EXPECT_EQ(toks[2].kind, TokenKind::kString);
  EXPECT_EQ(toks[2].text, "single");

  toks = lex("a = \"double\"\n");
  EXPECT_EQ(toks[2].text, "double");

  toks = lex("a = '''triple\nline'''\n");
  EXPECT_EQ(toks[2].text, "triple\nline");

  toks = lex("a = 'esc\\n\\t\\''\n");
  EXPECT_EQ(toks[2].text, "esc\n\t'");

  toks = lex("a = r'raw\\n'\n");
  EXPECT_EQ(toks[2].text, "raw\\n");
  EXPECT_EQ(toks[2].str_prefix, "r");

  toks = lex("a = b'bytes'\n");
  EXPECT_EQ(toks[2].str_prefix, "b");

  toks = lex("a = f'fstr'\n");
  EXPECT_EQ(toks[2].str_prefix, "f");
}

TEST(Lexer, TripleQuoteContainingQuotes) {
  const auto toks = lex("a = '''it's \"fine\"'''\n");
  EXPECT_EQ(toks[2].text, "it's \"fine\"");
}

TEST(Lexer, Numbers) {
  const auto toks = lex("a = 1 + 2.5 + 1e-3 + 0xFF + 0b101 + 3j + 10_000\n");
  std::vector<std::string> numbers;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::kNumber) numbers.push_back(t.text);
  }
  EXPECT_EQ(numbers, (std::vector<std::string>{"1", "2.5", "1e-3", "0xFF",
                                               "0b101", "3j", "10_000"}));
}

TEST(Lexer, MultiCharOperators) {
  const auto toks = lex("a **= b // c != d -> e := f\n");
  std::vector<std::string> ops;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::kOp) ops.push_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"**=", "//", "!=", "->", ":="}));
}

TEST(Lexer, LineAndColumnTracking) {
  const auto toks = lex("x = 1\ny = 2\n");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].col, 1);
  // 'y' is the first token of line 2.
  bool found = false;
  for (const auto& t : toks) {
    if (t.text == "y") {
      EXPECT_EQ(t.line, 2);
      EXPECT_EQ(t.col, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("a = 'oops\n"), SyntaxError);
  EXPECT_THROW(lex("a = '''oops"), SyntaxError);
}

TEST(Lexer, BadIndentThrows) {
  EXPECT_THROW(lex("if x:\n    y = 1\n  z = 2\n"), SyntaxError);
}

TEST(Lexer, UnmatchedCloseBracketThrows) {
  EXPECT_THROW(lex("a = )\n"), SyntaxError);
}

TEST(Lexer, UnexpectedCharThrows) {
  EXPECT_THROW(lex("a = $\n"), SyntaxError);
}

TEST(Lexer, EmptyInput) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEnd);
}

TEST(Lexer, AdjacentStringsKeptSeparate) {
  const auto toks = lex("a = 'x' 'y'\n");
  int strings = 0;
  for (const auto& t : toks) {
    if (t.kind == TokenKind::kString) ++strings;
  }
  EXPECT_EQ(strings, 2);  // concatenation happens in the parser
}

TEST(Lexer, KeywordListSanity) {
  EXPECT_TRUE(is_python_keyword("import"));
  EXPECT_TRUE(is_python_keyword("lambda"));
  EXPECT_TRUE(is_python_keyword("None"));
  EXPECT_FALSE(is_python_keyword("numpy"));
  EXPECT_FALSE(is_python_keyword("print"));  // not a keyword in py3
}

}  // namespace
}  // namespace lfm::pysrc
