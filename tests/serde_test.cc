// Unit tests for the Value type and the pickle-like codec, including
// malformed-input rejection.
#include <gtest/gtest.h>

#include "serde/json.h"
#include "serde/pickle.h"
#include "serde/value.h"

namespace lfm::serde {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_none());
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("hi").as_str(), "hi");
  EXPECT_EQ(Value(Bytes{1, 2, 3}).as_bytes().size(), 3u);
}

TEST(Value, IntWidensToReal) {
  EXPECT_DOUBLE_EQ(Value(7).as_real(), 7.0);
}

TEST(Value, WrongAccessorThrows) {
  EXPECT_THROW(Value(1).as_str(), Error);
  EXPECT_THROW(Value("x").as_int(), Error);
  EXPECT_THROW(Value().as_list(), Error);
}

TEST(Value, DictAccess) {
  ValueDict d;
  d["a"] = Value(1);
  Value v(std::move(d));
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("b"));
  EXPECT_THROW(v.at("b"), Error);
  EXPECT_FALSE(Value(1).contains("a"));
}

TEST(Value, EqualityDeep) {
  ValueList l1{Value(1), Value("x")};
  ValueList l2{Value(1), Value("x")};
  EXPECT_EQ(Value(l1), Value(l2));
  l2.push_back(Value());
  EXPECT_NE(Value(l1), Value(l2));
}

TEST(Value, Repr) {
  EXPECT_EQ(Value().repr(), "None");
  EXPECT_EQ(Value(true).repr(), "True");
  EXPECT_EQ(Value(-3).repr(), "-3");
  EXPECT_EQ(Value("a'b").repr(), "'a\\'b'");
  ValueList l{Value(1), Value(2)};
  EXPECT_EQ(Value(l).repr(), "[1, 2]");
  ValueDict d;
  d["k"] = Value(1);
  EXPECT_EQ(Value(d).repr(), "{'k': 1}");
}

Value roundtrip(const Value& v) { return loads(dumps(v)); }

TEST(Pickle, RoundtripScalars) {
  EXPECT_EQ(roundtrip(Value()), Value());
  EXPECT_EQ(roundtrip(Value(true)), Value(true));
  EXPECT_EQ(roundtrip(Value(false)), Value(false));
  EXPECT_EQ(roundtrip(Value(int64_t{0})), Value(int64_t{0}));
  EXPECT_EQ(roundtrip(Value(int64_t{-1})), Value(int64_t{-1}));
  EXPECT_EQ(roundtrip(Value(INT64_MAX)), Value(INT64_MAX));
  EXPECT_EQ(roundtrip(Value(INT64_MIN)), Value(INT64_MIN));
  EXPECT_EQ(roundtrip(Value(3.14159)), Value(3.14159));
  EXPECT_EQ(roundtrip(Value(-0.0)).as_real(), 0.0);
  EXPECT_EQ(roundtrip(Value("")), Value(""));
  EXPECT_EQ(roundtrip(Value("hello \n world")), Value("hello \n world"));
}

TEST(Pickle, RoundtripContainers) {
  ValueList inner{Value(1), Value("two"), Value(3.0)};
  ValueDict d;
  d["list"] = Value(inner);
  d["nested"] = Value(ValueDict{{"x", Value(Bytes{0, 255, 10})}});
  const Value v{std::move(d)};
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Pickle, RoundtripDeepNesting) {
  Value v(int64_t{42});
  for (int i = 0; i < 100; ++i) v = Value(ValueList{std::move(v)});
  EXPECT_EQ(roundtrip(v), v);
}

TEST(Pickle, EncodedSizeMatches) {
  ValueDict d;
  d["k"] = Value(ValueList{Value(1), Value("str"), Value(2.5)});
  const Value v(std::move(d));
  EXPECT_EQ(dumps(v).size(), encoded_size(v));
}

TEST(Pickle, RejectsBadMagic) {
  Bytes b = dumps(Value(1));
  b[0] = 'X';
  EXPECT_THROW(loads(b), Error);
}

TEST(Pickle, RejectsBadVersion) {
  Bytes b = dumps(Value(1));
  b[4] = 99;
  EXPECT_THROW(loads(b), Error);
}

TEST(Pickle, RejectsTruncation) {
  const Bytes b = dumps(Value(std::string(100, 'a')));
  for (const size_t cut : {size_t{4}, b.size() / 2, b.size() - 1}) {
    Bytes t(b.begin(), b.begin() + static_cast<long>(cut));
    EXPECT_THROW(loads(t), Error) << "cut=" << cut;
  }
}

TEST(Pickle, RejectsTrailingGarbage) {
  Bytes b = dumps(Value(1));
  b.push_back(0);
  EXPECT_THROW(loads(b), Error);
}

TEST(Pickle, RejectsUnknownTag) {
  Bytes b = dumps(Value(1));
  b[5] = 200;  // tag byte
  EXPECT_THROW(loads(b), Error);
}

TEST(Pickle, RejectsBadBoolByte) {
  Bytes b = dumps(Value(true));
  b[6] = 7;
  EXPECT_THROW(loads(b), Error);
}

TEST(Pickle, RejectsEmpty) {
  EXPECT_THROW(loads(Bytes{}), Error);
}


TEST(Pickle, RejectsExcessiveNesting) {
  // The decoder guards against stack exhaustion at depth > 256.
  Value v(int64_t{1});
  for (int i = 0; i < 300; ++i) v = Value(ValueList{std::move(v)});
  const Bytes wire = dumps(v);  // encoding recurses but 300 frames is fine
  EXPECT_THROW(loads(wire), Error);
}

TEST(Pickle, AcceptsNestingAtGuardBoundary) {
  Value v(int64_t{7});
  for (int i = 0; i < 250; ++i) v = Value(ValueList{std::move(v)});
  EXPECT_EQ(loads(dumps(v)), v);
}

TEST(Pickle, LargePayload) {
  ValueList big;
  for (int i = 0; i < 10000; ++i) big.push_back(Value(int64_t{i} * 1000003));
  const Value v(std::move(big));
  const Value back = roundtrip(v);
  ASSERT_EQ(back.as_list().size(), 10000u);
  EXPECT_EQ(back.as_list()[9999].as_int(), 9999LL * 1000003);
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(from_json("null").is_none());
  EXPECT_EQ(from_json("true"), Value(true));
  EXPECT_EQ(from_json("false"), Value(false));
  EXPECT_EQ(from_json("42"), Value(int64_t{42}));
  EXPECT_EQ(from_json("-7"), Value(int64_t{-7}));
  EXPECT_EQ(from_json("\"hi\""), Value(std::string("hi")));
  EXPECT_TRUE(from_json("2.5").is_real());
  EXPECT_DOUBLE_EQ(from_json("2.5").as_real(), 2.5);
  EXPECT_TRUE(from_json("1e3").is_real());
  EXPECT_DOUBLE_EQ(from_json("1e3").as_real(), 1000.0);
}

TEST(Json, ParsesContainersAndWhitespace) {
  const Value v = from_json("  { \"a\" : [ 1 , 2.0 , \"x\" ] , \"b\" : { } }  ");
  ASSERT_TRUE(v.is_dict());
  const auto& list = v.as_dict().at("a").as_list();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], Value(int64_t{1}));
  EXPECT_DOUBLE_EQ(list[1].as_real(), 2.0);
  EXPECT_EQ(list[2], Value(std::string("x")));
  EXPECT_TRUE(v.as_dict().at("b").as_dict().empty());
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(from_json(R"("a\"b\\c\/d\n\t")").as_str(), "a\"b\\c/d\n\t");
  // \u sequences decode to UTF-8, including surrogate pairs.
  EXPECT_EQ(from_json(R"("\u0041")").as_str(), "A");
  EXPECT_EQ(from_json(R"("\u00e9")").as_str(), "\xc3\xa9");
  EXPECT_EQ(from_json(R"("\ud83d\ude00")").as_str(), "\xf0\x9f\x98\x80");
}

TEST(Json, RoundTripsThroughToJson) {
  ValueDict d;
  d["name"] = Value(std::string("task \"1\"\n"));
  d["count"] = Value(int64_t{3});
  d["ratio"] = Value(0.125);
  d["flags"] = Value(ValueList{Value(true), Value(false), Value()});
  const Value v(std::move(d));
  EXPECT_EQ(from_json(to_json(v)), v);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(from_json(""), Error);
  EXPECT_THROW(from_json("{"), Error);
  EXPECT_THROW(from_json("[1,]"), Error);
  EXPECT_THROW(from_json("{\"a\":}"), Error);
  EXPECT_THROW(from_json("{\"a\" 1}"), Error);
  EXPECT_THROW(from_json("nul"), Error);
  EXPECT_THROW(from_json("\"unterminated"), Error);
  EXPECT_THROW(from_json("1 2"), Error);  // trailing content
  EXPECT_THROW(from_json("\"bad \\q escape\""), Error);
  EXPECT_THROW(from_json("\"\\ud83d\""), Error);  // lone surrogate
}

// --- allocation-lean fast path: dumps_into / loads_view ---------------------

TEST(FastPath, DumpsIntoReusesBuffer) {
  ValueDict d;
  d["k"] = Value(ValueList{Value(1), Value("str"), Value(Bytes{9, 8, 7})});
  const Value v(std::move(d));
  const Bytes reference = dumps(v);

  Bytes buffer;
  EXPECT_EQ(dumps_into(v, buffer), reference.size());
  EXPECT_EQ(buffer, reference);

  // Re-encoding into the same buffer replaces the contents without
  // shrinking: the capacity from the first pass is kept.
  const size_t cap = buffer.capacity();
  EXPECT_EQ(dumps_into(Value(int64_t{5}), buffer), dumps(Value(int64_t{5})).size());
  EXPECT_EQ(buffer, dumps(Value(int64_t{5})));
  EXPECT_GE(buffer.capacity(), cap);
}

TEST(FastPath, LoadsViewBorrowsLeaves) {
  ValueDict d;
  d["name"] = Value(std::string("a-rather-long-function-name"));
  d["blob"] = Value(Bytes{1, 2, 3, 4});
  const Bytes wire = dumps(Value(std::move(d)));

  const Value v = loads_view(wire);
  const Value& name = v.at("name");
  EXPECT_TRUE(name.is_str());
  EXPECT_TRUE(name.is_borrowed());
  // The view points into the wire buffer, no copy made.
  const std::string_view sv = name.str_view();
  EXPECT_EQ(sv, "a-rather-long-function-name");
  EXPECT_GE(reinterpret_cast<const uint8_t*>(sv.data()), wire.data());
  EXPECT_LT(reinterpret_cast<const uint8_t*>(sv.data()), wire.data() + wire.size());

  const Value& blob = v.at("blob");
  EXPECT_TRUE(blob.is_bytes());
  EXPECT_TRUE(blob.is_borrowed());
  EXPECT_EQ(blob.bytes_view().size, 4u);
}

TEST(FastPath, OwningAccessorMaterializesInPlace) {
  const Bytes wire = dumps(Value(std::string("lazy")));
  const Value v = loads_view(wire);
  EXPECT_TRUE(v.is_borrowed());
  // as_str promotes the borrowed leaf to an owned string and the result
  // stays valid after the wire buffer is gone.
  const std::string& owned = v.as_str();
  EXPECT_EQ(owned, "lazy");
  EXPECT_FALSE(v.is_borrowed());
  EXPECT_EQ(v.str_view(), "lazy");
}

TEST(FastPath, BorrowedEqualsOwned) {
  ValueDict d;
  d["s"] = Value(std::string("twin"));
  d["b"] = Value(Bytes{5, 6});
  const Value owned(std::move(d));
  const Bytes wire = dumps(owned);
  EXPECT_TRUE(loads_view(wire) == owned);
  EXPECT_TRUE(owned == loads_view(wire));
}

TEST(FastPath, ToOwnedSurvivesBufferDeath) {
  Value copy;
  {
    const Bytes wire = dumps(Value(ValueList{Value(std::string("deep")),
                                             Value(Bytes{42})}));
    copy = loads_view(wire).to_owned();
  }  // wire destroyed; views would now dangle
  EXPECT_FALSE(copy.as_list()[0].is_borrowed());
  EXPECT_EQ(copy.as_list()[0].as_str(), "deep");
  EXPECT_EQ(copy.as_list()[1].as_bytes(), (Bytes{42}));
}

TEST(FastPath, LoadsViewMatchesLoads) {
  ValueDict d;
  d["nested"] = Value(ValueDict{{"x", Value(Bytes{0, 255, 10})},
                                {"y", Value(std::string("why"))}});
  d["nums"] = Value(ValueList{Value(1), Value(2.5), Value(false)});
  const Value v(std::move(d));
  const Bytes wire = dumps(v);
  EXPECT_EQ(loads_view(wire).to_owned(), loads(wire));
}

TEST(FastPath, LoadsViewRejectsSameMalformedInput) {
  Bytes b = dumps(Value(std::string("x")));
  EXPECT_THROW(loads_view(b.data(), b.size() - 1), Error);
  b[0] = 'X';
  EXPECT_THROW(loads_view(b), Error);
}

}  // namespace
}  // namespace lfm::serde
