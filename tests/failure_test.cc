// Failure-injection tests for the Work Queue master: worker crashes mid-run,
// lost caches, task cancellation, and combinations with retries.
#include <gtest/gtest.h>

#include "apps/workload.h"
#include "wq/master.h"

namespace lfm::wq {
namespace {

using alloc::LabelerConfig;
using alloc::Resources;

LabelerConfig cfg_8core() {
  LabelerConfig c;
  c.whole_node = Resources{8, 8e9, 16e9};
  c.guess = Resources{1, 1e9, 2e9};
  c.strategy = alloc::Strategy::kGuess;
  return c;
}

TaskSpec task(uint64_t id, double runtime) {
  TaskSpec t;
  t.id = id;
  t.category = "u";
  t.exec_seconds = runtime;
  t.true_cores = 1.0;
  t.true_peak = Resources{1.0, 500e6, 1e9};
  return t;
}

struct Rig {
  sim::Simulation sim;
  sim::Network net{sim, {}};
  alloc::Labeler labeler{cfg_8core()};
  Master master{sim, net, labeler};
};

TEST(FailureInjection, CrashedWorkerTasksRequeueAndComplete) {
  Rig rig;
  rig.master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  rig.master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  for (uint64_t i = 1; i <= 12; ++i) rig.master.submit(task(i, 20.0));
  // Kill worker 0 mid-flight.
  rig.sim.schedule(5.0, [&] { rig.master.crash_worker(0); });
  const MasterStats stats = rig.master.run();
  EXPECT_EQ(stats.tasks_completed, 12);
  EXPECT_EQ(stats.tasks_failed, 0);
  EXPECT_EQ(rig.master.worker_crashes(), 1);
  for (const auto& rec : rig.master.records()) {
    EXPECT_EQ(rec.state, TaskState::kDone);
    EXPECT_NE(rec.worker_id, -1);
  }
}

TEST(FailureInjection, AllWorkersCrashedLeavesTasksQueued) {
  Rig rig;
  rig.master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  for (uint64_t i = 1; i <= 4; ++i) rig.master.submit(task(i, 50.0));
  rig.sim.schedule(1.0, [&] { rig.master.crash_worker(0); });
  const MasterStats stats = rig.master.run();
  EXPECT_EQ(stats.tasks_completed, 0);
  EXPECT_EQ(rig.master.live_worker_count(), 0);
  EXPECT_EQ(rig.master.ready_count(), 4);  // still waiting, no pool
}

TEST(FailureInjection, CrashLosesCacheRetransfersEnvironment) {
  Rig rig;
  sim::NetworkParams np;
  np.bandwidth = 100e6;
  np.per_flow_bandwidth = 100e6;
  sim::Network net(rig.sim, np);
  alloc::Labeler labeler(cfg_8core());
  Master master(rig.sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});

  // Tasks share one 100 MB cacheable environment.
  for (uint64_t i = 1; i <= 10; ++i) {
    TaskSpec t = task(i, 10.0);
    t.inputs.push_back(apps::environment_file("env.tar.gz", 100LL * 1000 * 1000, 1.0));
    master.submit(std::move(t));
  }
  rig.sim.schedule(15.0, [&] { master.crash_worker(0); });
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 10);
  // More than the no-crash 2 env transfers: the crash forced at least one
  // retransfer... but worker 0 never comes back, so exactly 2 workers ever
  // fetched it; tasks requeued onto worker 1 reuse its cache. Transfers of
  // the env = 2 (one per worker that ever ran tasks).
  EXPECT_GE(stats.transferred_bytes, 2LL * 100 * 1000 * 1000);
}

TEST(FailureInjection, CancelQueuedTaskNeverRuns) {
  Rig rig;
  rig.master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  // Fill the worker (8 one-core tasks), then queue two more.
  for (uint64_t i = 1; i <= 10; ++i) rig.master.submit(task(i, 30.0));
  rig.sim.schedule(1.0, [&] { EXPECT_TRUE(rig.master.cancel_task(10)); });
  const MasterStats stats = rig.master.run();
  EXPECT_EQ(stats.tasks_completed, 9);
  EXPECT_EQ(stats.tasks_cancelled, 1);
  const auto& rec = rig.master.records()[9];
  EXPECT_EQ(rec.state, TaskState::kDone);
  EXPECT_LT(rec.finish_time, 0.0);  // never finished a real attempt
}

TEST(FailureInjection, CancelRunningTaskReleasesResources) {
  Rig rig;
  rig.master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  rig.master.submit(task(1, 100.0));
  rig.master.submit(task(2, 5.0));
  rig.sim.schedule(1.0, [&] { EXPECT_TRUE(rig.master.cancel_task(1)); });
  const MasterStats stats = rig.master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_EQ(stats.tasks_cancelled, 1);
  // The long task's slot was reclaimed when its attempt finished; makespan
  // is bounded by the long task's natural runtime (cancellation is lazy,
  // detected at attempt completion).
  EXPECT_LE(stats.makespan, 101.0);
}

TEST(FailureInjection, CancelUnknownOrDoneTaskReturnsFalse) {
  Rig rig;
  rig.master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  rig.master.submit(task(1, 1.0));
  rig.master.run();
  EXPECT_FALSE(rig.master.cancel_task(1));   // already done
  EXPECT_FALSE(rig.master.cancel_task(99));  // unknown
}

TEST(FailureInjection, RepeatedCrashesStillConverge) {
  Rig rig;
  for (int w = 0; w < 4; ++w) {
    rig.master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  }
  for (uint64_t i = 1; i <= 30; ++i) rig.master.submit(task(i, 15.0));
  // Crash three of the four workers at staggered times.
  rig.sim.schedule(5.0, [&] { rig.master.crash_worker(0); });
  rig.sim.schedule(10.0, [&] { rig.master.crash_worker(1); });
  rig.sim.schedule(20.0, [&] { rig.master.crash_worker(2); });
  const MasterStats stats = rig.master.run();
  EXPECT_EQ(stats.tasks_completed, 30);
  EXPECT_EQ(rig.master.worker_crashes(), 3);
  EXPECT_EQ(rig.master.live_worker_count(), 1);
}

TEST(FailureInjection, CrashingRetiredWorkerIsNoop) {
  Rig rig;
  rig.master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  rig.master.submit(task(1, 1.0));
  rig.master.run();
  EXPECT_TRUE(rig.master.release_idle_worker());
  rig.master.crash_worker(0);
  EXPECT_EQ(rig.master.worker_crashes(), 0);
}

}  // namespace
}  // namespace lfm::wq
