// Property-based round-trip and adversarial-input tests for the two data
// plane codecs: the serde pickle (owned and zero-copy view decode) and the
// wq wire protocol (v1 text and v2 binary frames). Mutated inputs must
// either decode or throw lfm::Error — never crash, hang, or read out of
// bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "serde/pickle.h"
#include "serde/value.h"
#include "wq/protocol.h"

namespace lfm {
namespace {

using serde::Value;

// Deterministic generator: the suite must fail reproducibly.
using Rng = std::mt19937_64;

std::string random_token(Rng& rng, size_t max_len) {
  static const char kAlpha[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
  std::uniform_int_distribution<size_t> len(1, max_len);
  std::uniform_int_distribution<size_t> pick(0, sizeof(kAlpha) - 2);
  std::string s(len(rng), '\0');
  for (auto& c : s) c = kAlpha[pick(rng)];
  return s;
}

std::string random_text(Rng& rng, size_t max_len) {
  // Full printable range plus whitespace — exercises the v1 escaper.
  std::uniform_int_distribution<size_t> len(0, max_len);
  std::uniform_int_distribution<int> pick(0, 96);
  std::string s(len(rng), '\0');
  for (auto& c : s) {
    const int v = pick(rng);
    c = v < 95 ? static_cast<char>(' ' + v) : (v == 95 ? '\t' : '\n');
  }
  return s;
}

serde::Bytes random_bytes(Rng& rng, size_t max_len) {
  std::uniform_int_distribution<size_t> len(0, max_len);
  std::uniform_int_distribution<int> byte(0, 255);
  serde::Bytes b(len(rng));
  for (auto& x : b) x = static_cast<uint8_t>(byte(rng));
  return b;
}

Value random_value(Rng& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth > 0 ? 7 : 5);
  switch (kind(rng)) {
    case 0: return Value();
    case 1: return Value(rng() % 2 == 0);
    case 2: {
      std::uniform_int_distribution<int64_t> d(INT64_MIN, INT64_MAX);
      return Value(d(rng));
    }
    case 3: {
      std::uniform_real_distribution<double> d(-1e18, 1e18);
      return Value(d(rng));
    }
    case 4: return Value(random_text(rng, 48));
    case 5: return Value(random_bytes(rng, 48));
    case 6: {
      serde::ValueList l;
      std::uniform_int_distribution<size_t> n(0, 5);
      const size_t count = n(rng);
      for (size_t i = 0; i < count; ++i) l.push_back(random_value(rng, depth - 1));
      return Value(std::move(l));
    }
    default: {
      serde::ValueDict d;
      std::uniform_int_distribution<size_t> n(0, 5);
      const size_t count = n(rng);
      for (size_t i = 0; i < count; ++i) {
        d[random_token(rng, 12)] = random_value(rng, depth - 1);
      }
      return Value(std::move(d));
    }
  }
}

TEST(WireFuzz, PickleRoundtripsRandomTrees) {
  Rng rng(0xC0FFEE);
  serde::Bytes buffer;
  for (int i = 0; i < 300; ++i) {
    const Value original = random_value(rng, 4);
    // Owned decode of the one-shot encoder.
    const serde::Bytes wire = serde::dumps(original);
    EXPECT_TRUE(serde::loads(wire) == original) << "iteration " << i;
    // Buffer-reusing encoder produces identical bytes.
    serde::dumps_into(original, buffer);
    EXPECT_EQ(buffer, wire) << "iteration " << i;
    // Zero-copy view decode compares equal while the buffer lives...
    const Value borrowed = serde::loads_view(wire);
    EXPECT_TRUE(borrowed == original) << "iteration " << i;
    // ...and to_owned survives the buffer.
    const Value owned = borrowed.to_owned();
    EXPECT_TRUE(owned == original) << "iteration " << i;
  }
}

TEST(WireFuzz, PickleRejectsTruncation) {
  Rng rng(0xBADF00D);
  for (int i = 0; i < 100; ++i) {
    const serde::Bytes wire = serde::dumps(random_value(rng, 3));
    for (size_t keep = 0; keep < wire.size(); ++keep) {
      const serde::Bytes cut(wire.begin(), wire.begin() + static_cast<long>(keep));
      EXPECT_THROW(serde::loads(cut), Error) << "i=" << i << " keep=" << keep;
      EXPECT_THROW(serde::loads_view(cut), Error) << "i=" << i << " keep=" << keep;
    }
  }
}

TEST(WireFuzz, PickleSurvivesBitFlips) {
  Rng rng(0xDEAD10CC);
  for (int i = 0; i < 200; ++i) {
    serde::Bytes wire = serde::dumps(random_value(rng, 3));
    if (wire.empty()) continue;
    std::uniform_int_distribution<size_t> pos(0, wire.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    wire[pos(rng)] ^= static_cast<uint8_t>(1 << bit(rng));
    // A flipped bit may still decode to some (different) value; it must
    // never crash or read past the buffer.
    try {
      (void)serde::loads(wire);
      (void)serde::loads_view(wire).to_owned();
    } catch (const Error&) {
      // rejected — fine
    }
  }
}

wq::TaskMessage random_task(Rng& rng) {
  wq::TaskMessage msg;
  msg.task_id = rng() % 1000000 + 1;
  msg.category = random_token(rng, 16);
  // v1 cannot carry an empty cmd line (the stanza would lose its field), so
  // keep the command non-empty; emptiness is not interesting to fuzz here.
  msg.command_line = "run " + random_text(rng, 76);
  std::uniform_real_distribution<double> cores(0.25, 64.0);
  // v1 prints cores with three decimals; generate at that granularity so
  // the round trip is exact in both versions.
  const double quantized_cores = std::round(cores(rng) * 1000.0) / 1000.0;
  msg.allocation = alloc::Resources{quantized_cores, double(rng() % (int64_t{1} << 40)),
                                    double(rng() % (int64_t{1} << 40))};
  std::uniform_int_distribution<size_t> nfiles(0, 4);
  const size_t n = nfiles(rng);
  for (size_t i = 0; i < n; ++i) {
    msg.infiles.push_back({random_token(rng, 24),
                           static_cast<int64_t>(rng() % (int64_t{1} << 55)),
                           rng() % 2 == 0});
  }
  const size_t m = nfiles(rng);
  for (size_t i = 0; i < m; ++i) msg.outfiles.push_back(random_token(rng, 24));
  return msg;
}

wq::ResultMessage random_result(Rng& rng) {
  wq::ResultMessage msg;
  msg.task_id = rng() % 1000000 + 1;
  std::uniform_int_distribution<int> exit(-128, 127);
  msg.exit_code = exit(rng);
  msg.exhausted = rng() % 4 == 0;
  if (msg.exhausted) msg.exhausted_resource = rng() % 2 == 0 ? "memory" : "disk";
  std::uniform_real_distribution<double> cores(0.0, 64.0);
  msg.cores_used = cores(rng);
  msg.memory_peak_bytes = static_cast<int64_t>(rng() % (uint64_t{1} << 62));
  msg.disk_peak_bytes = static_cast<int64_t>(rng() % (uint64_t{1} << 62));
  std::uniform_real_distribution<double> wall(0.0, 1e6);
  msg.wall_seconds = wall(rng);
  msg.payload = random_bytes(rng, 256);
  return msg;
}

bool same_task(const wq::TaskMessage& a, const wq::TaskMessage& b) {
  if (a.task_id != b.task_id || a.category != b.category ||
      a.command_line != b.command_line || a.infiles.size() != b.infiles.size() ||
      a.outfiles != b.outfiles) {
    return false;
  }
  for (size_t i = 0; i < a.infiles.size(); ++i) {
    if (a.infiles[i].name != b.infiles[i].name ||
        a.infiles[i].size_bytes != b.infiles[i].size_bytes ||
        a.infiles[i].cacheable != b.infiles[i].cacheable) {
      return false;
    }
  }
  return a.allocation.cores == b.allocation.cores;
}

bool same_result(const wq::ResultMessage& a, const wq::ResultMessage& b) {
  return a.task_id == b.task_id && a.exit_code == b.exit_code &&
         a.exhausted == b.exhausted &&
         a.exhausted_resource == b.exhausted_resource &&
         a.memory_peak_bytes == b.memory_peak_bytes &&
         a.disk_peak_bytes == b.disk_peak_bytes && a.payload == b.payload;
}

TEST(WireFuzz, ProtocolRoundtripsBothVersions) {
  Rng rng(0x5EED);
  for (int i = 0; i < 200; ++i) {
    const wq::TaskMessage t = random_task(rng);
    const wq::ResultMessage r = random_result(rng);
    for (const auto v : {wq::WireVersion::kV1, wq::WireVersion::kV2}) {
      EXPECT_TRUE(same_task(wq::decode_task(wq::encode(t, v)), t))
          << "i=" << i << " v=" << int(v);
      EXPECT_TRUE(same_result(wq::decode_result(wq::encode(r, v)), r))
          << "i=" << i << " v=" << int(v);
    }
  }
}

TEST(WireFuzz, ProtocolBatchRoundtrips) {
  Rng rng(0xB47C4);
  for (int i = 0; i < 40; ++i) {
    std::vector<wq::ResultMessage> batch;
    std::uniform_int_distribution<size_t> n(1, 12);
    const size_t count = n(rng);
    for (size_t k = 0; k < count; ++k) batch.push_back(random_result(rng));
    for (const auto v : {wq::WireVersion::kV1, wq::WireVersion::kV2}) {
      const auto back = wq::decode_result_batch(wq::encode_batch(batch, v));
      ASSERT_EQ(back.size(), batch.size()) << "i=" << i << " v=" << int(v);
      for (size_t k = 0; k < count; ++k) {
        EXPECT_TRUE(same_result(back[k], batch[k])) << "i=" << i << " k=" << k;
      }
    }
  }
}

TEST(WireFuzz, ProtocolRejectsTruncation) {
  Rng rng(0x7A5C);
  for (int i = 0; i < 30; ++i) {
    for (const auto v : {wq::WireVersion::kV1, wq::WireVersion::kV2}) {
      const std::string wire = wq::encode(random_task(rng), v);
      // Every strict prefix must be rejected, not misparsed: both versions
      // are self-delimiting (v1 by the end line, v2 by the length prefix).
      for (size_t keep = 1; keep < wire.size(); keep += 1 + keep / 8) {
        EXPECT_THROW(wq::decode_task(wire.substr(0, keep)), Error)
            << "i=" << i << " v=" << int(v) << " keep=" << keep;
      }
    }
  }
}

TEST(WireFuzz, ProtocolSurvivesBitFlips) {
  Rng rng(0xF1135);
  for (int i = 0; i < 150; ++i) {
    for (const auto v : {wq::WireVersion::kV1, wq::WireVersion::kV2}) {
      std::string wire = wq::encode(random_result(rng), v);
      std::uniform_int_distribution<size_t> pos(0, wire.size() - 1);
      std::uniform_int_distribution<int> bit(0, 7);
      const size_t at = pos(rng);
      wire[at] =
          static_cast<char>(static_cast<uint8_t>(wire[at]) ^ (1 << bit(rng)));
      try {
        (void)wq::decode_result(wire);
      } catch (const Error&) {
        // rejected — fine
      }
    }
  }
}

TEST(WireFuzz, ProtocolRejectsRandomGarbage) {
  Rng rng(0x6A6B6C);
  for (int i = 0; i < 200; ++i) {
    const serde::Bytes junk = random_bytes(rng, 128);
    const std::string wire(junk.begin(), junk.end());
    try {
      (void)wq::decode_task(wire);
    } catch (const Error&) {
    }
    try {
      (void)wq::decode_result_batch(wire);
    } catch (const Error&) {
    }
  }
}

}  // namespace
}  // namespace lfm
