// Tests for the Work Queue master: resource packing, cache affinity,
// exhaustion retries, and the four strategies end-to-end on small workloads.
#include <gtest/gtest.h>

#include "apps/workload.h"
#include "wq/master.h"

namespace lfm::wq {
namespace {

using alloc::LabelerConfig;
using alloc::Resources;
using alloc::Strategy;

LabelerConfig node_config(double cores, double mem, double disk) {
  LabelerConfig c;
  c.whole_node = Resources{cores, mem, disk};
  c.guess = Resources{1.0, 1.5e9, 2e9};
  return c;
}

TaskSpec simple_task(uint64_t id, double runtime, double mem = 100e6,
                     double disk = 500e6) {
  TaskSpec t;
  t.id = id;
  t.category = "uniform";
  t.exec_seconds = runtime;
  t.true_cores = 1.0;
  t.true_peak = Resources{1.0, mem, disk};
  return t;
}

TEST(Master, SingleTaskCompletes) {
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(node_config(8, 8e9, 16e9));
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  master.submit(simple_task(1, 10.0));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_EQ(stats.tasks_failed, 0);
  EXPECT_GE(stats.makespan, 10.0);
  ASSERT_EQ(master.records().size(), 1u);
  EXPECT_EQ(master.records()[0].state, TaskState::kDone);
  EXPECT_GT(master.records()[0].finish_time, 0.0);
}

TEST(Master, UnmanagedRunsOneTaskPerWorker) {
  // 4 tasks of 10 s on one 8-core worker: Unmanaged serializes them.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  cfg.strategy = Strategy::kUnmanaged;
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 4; ++i) tasks.push_back(simple_task(i, 10.0));
  const auto result = run_scenario(Strategy::kUnmanaged, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 4);
  EXPECT_GE(result.stats.makespan, 40.0);
}

TEST(Master, OraclePacksTasksConcurrently) {
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 8; ++i) tasks.push_back(simple_task(i, 10.0));
  const auto result = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 8);
  // 8 one-core tasks on an 8-core node run together: ~10 s, not 80.
  EXPECT_LT(result.stats.makespan, 15.0);
  EXPECT_EQ(result.stats.exhaustion_retries, 0);
}

TEST(Master, GuessMemoryBoundLimitsPacking) {
  // Guess = 1.5 GB per task on an 8 GB node: only 5 run at once even though
  // 8 cores are free (the Fig 6 Guess-vs-Oracle gap).
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 16; ++i) tasks.push_back(simple_task(i, 10.0));
  const auto guess = run_scenario(Strategy::kGuess, cfg,
                                  {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  const auto oracle = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_GT(guess.stats.makespan, oracle.stats.makespan);
}

TEST(Master, ExhaustionRetriesAtWholeNode) {
  // A task needing 3 GB under a 1.5 GB Guess: first attempt exhausts, the
  // retry at whole-node succeeds.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  std::vector<TaskSpec> tasks = {simple_task(1, 10.0, 3e9)};
  const auto result = run_scenario(Strategy::kGuess, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 1);
  EXPECT_EQ(result.stats.exhaustion_retries, 1);
}

TEST(Master, RepeatedExhaustionEventuallyFails) {
  // A task that cannot fit even the whole node fails after max_retries.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  MasterConfig mc;
  mc.max_retries = 2;
  std::vector<TaskSpec> tasks = {simple_task(1, 5.0, 100e9)};  // 100 GB need
  const auto result = run_scenario(Strategy::kGuess, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks, {}, mc);
  EXPECT_EQ(result.stats.tasks_completed, 0);
  EXPECT_EQ(result.stats.tasks_failed, 1);
  EXPECT_GT(result.stats.exhaustion_retries, 0);
}

TEST(Master, AutoConvergesToLowRetries) {
  // Uniform workload under Auto: warmup at whole node, then tight packing
  // with few retries (<1% in the paper's HEP run; we allow some slack).
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  cfg.warmup_samples = 3;
  Rng rng(3);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 200; ++i) {
    tasks.push_back(simple_task(i, rng.uniform(5.0, 10.0),
                                rng.uniform(80e6, 110e6), rng.uniform(700e6, 1000e6)));
  }
  const auto result = run_scenario(Strategy::kAuto, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0},
                                    {Resources{8, 8e9, 16e9}, 0.0}},
                                   tasks);
  EXPECT_EQ(result.stats.tasks_completed, 200);
  EXPECT_LT(result.stats.exhaustion_retries, 10);
}

TEST(Master, StrategyOrderingOnUniformWorkload) {
  // The headline Figs 6-9 ordering: Oracle <= Auto < Guess-ish < Unmanaged.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  Rng rng(7);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 100; ++i) {
    tasks.push_back(simple_task(i, rng.uniform(5.0, 10.0),
                                rng.uniform(80e6, 110e6), rng.uniform(700e6, 900e6)));
  }
  std::vector<WorkerSpec> workers(4, {Resources{8, 8e9, 16e9}, 0.0});
  const double oracle =
      run_scenario(Strategy::kOracle, cfg, workers, tasks).stats.makespan;
  const double auto_t =
      run_scenario(Strategy::kAuto, cfg, workers, tasks).stats.makespan;
  const double unmanaged =
      run_scenario(Strategy::kUnmanaged, cfg, workers, tasks).stats.makespan;
  EXPECT_LE(oracle, auto_t * 1.05);
  EXPECT_LT(auto_t, unmanaged);
  EXPECT_GT(unmanaged, oracle * 3.0);  // several-fold, per the abstract
}

TEST(Master, CacheAffinityAvoidsRetransfers) {
  // Tasks sharing a big cacheable input: after warm-up, transfers stop.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  sim::NetworkParams np;
  np.bandwidth = 100e6;
  np.per_flow_bandwidth = 100e6;
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 20; ++i) {
    TaskSpec t = simple_task(i, 5.0);
    t.inputs.push_back(apps::environment_file("env.tar.gz", 200LL * 1000 * 1000, 2.0));
    tasks.push_back(std::move(t));
  }
  const auto result = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0},
                                    {Resources{8, 8e9, 16e9}, 0.0}},
                                   tasks, np);
  EXPECT_EQ(result.stats.tasks_completed, 20);
  // The environment transfers at most once per worker.
  EXPECT_LE(result.stats.transferred_bytes, 2LL * 200 * 1000 * 1000 + 1);
  EXPECT_GE(result.stats.cache_hits, 18);
}

TEST(Master, WorkersBecomeReadyOverTime) {
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 100.0});  // pilot connects late
  master.submit(simple_task(1, 5.0));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_GE(master.records()[0].start_time, 100.0);
}

TEST(Master, TaskLargerThanAnyWorkerNeverDispatches) {
  LabelerConfig cfg = node_config(4, 4e9, 8e9);
  cfg.strategy = alloc::Strategy::kOracle;
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  labeler.set_oracle("uniform", Resources{16.0, 1e9, 1e9});  // 16 cores needed
  Master master(sim, net, labeler);
  master.add_worker({Resources{4, 4e9, 8e9}, 0.0});
  master.submit(simple_task(1, 5.0));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 0);  // stays queued forever; sim drains
}

TEST(Master, UtilizationAccounting) {
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 8; ++i) tasks.push_back(simple_task(i, 10.0));
  const auto result = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_GT(result.stats.utilization(), 0.5);
  EXPECT_LE(result.stats.utilization(), 1.0 + 1e-9);
}

TEST(Master, CompletionCallbackFires) {
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(node_config(8, 8e9, 16e9));
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  int callbacks = 0;
  master.set_on_complete([&](const TaskRecord& r) {
    ++callbacks;
    EXPECT_EQ(r.state, TaskState::kDone);
  });
  master.submit(simple_task(1, 1.0));
  master.submit(simple_task(2, 1.0));
  master.run();
  EXPECT_EQ(callbacks, 2);
}

TEST(Master, OutputTransferAccounted) {
  sim::Simulation sim;
  sim::NetworkParams np;
  np.bandwidth = 50e6;
  np.per_flow_bandwidth = 50e6;
  sim::Network net(sim, np);
  alloc::Labeler labeler(node_config(8, 8e9, 16e9));
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  TaskSpec t = simple_task(1, 1.0);
  t.output_bytes = 50LL * 1000 * 1000;
  master.submit(std::move(t));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_GE(stats.makespan, 2.0);  // 1 s run + 1 s output transfer
  EXPECT_EQ(stats.transferred_bytes, 50LL * 1000 * 1000);
}

TEST(Master, FewerCoresStretchRuntime) {
  // A 4-way-parallel task granted 1 core takes ~4x longer.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  cfg.strategy = alloc::Strategy::kOracle;
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  labeler.set_oracle("wide", Resources{1.0, 1e9, 1e9});  // deliberately narrow
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  TaskSpec t;
  t.id = 1;
  t.category = "wide";
  t.exec_seconds = 10.0;
  t.true_cores = 4.0;
  t.true_peak = Resources{4.0, 500e6, 500e6};
  master.submit(std::move(t));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_GE(stats.makespan, 39.0);  // 10 s * 4/1
}


TEST(Master, CacheEvictionLru) {
  // Worker cache holds two 400 MB files (disk 2 GB, cache_fraction 0.5 ->
  // 1 GB). Three apps round-robin: the LRU environment is evicted and
  // re-fetched, counted in cache_evictions.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);
  std::vector<TaskSpec> tasks;
  uint64_t id = 0;
  for (int round = 0; round < 4; ++round) {
    for (int app = 0; app < 3; ++app) {
      TaskSpec t = simple_task(++id, 5.0, 100e6, 0.2e9);
      t.category = "app";
      t.inputs.push_back(
          apps::environment_file("env-" + std::to_string(app), 400LL * 1000 * 1000, 0.1));
      tasks.push_back(std::move(t));
    }
  }
  // One single-slot worker so every task runs alone and apps alternate.
  // Affinity OFF: with it on, the affinity pass batches same-app tasks and
  // avoids the thrash (verified by CacheAffinityPreventsThrash below).
  LabelerConfig one = cfg;
  one.guess = Resources{8.0, 8e9, 0.5e9};
  MasterConfig mc;
  mc.cache_affinity = false;
  const auto result = run_scenario(Strategy::kGuess, one,
                                   {{Resources{8, 8e9, 2e9}, 0.0}}, tasks, {}, mc);
  EXPECT_EQ(result.stats.tasks_completed, 12);
  EXPECT_GE(result.stats.cache_evictions, 5);
  // Far more bytes than the 3-env minimum: evictions force re-transfers.
  EXPECT_GT(result.stats.transferred_bytes, 6LL * 400 * 1000 * 1000);

  // Same workload with affinity ON: the scheduler batches per application,
  // paying (nearly) the minimum transfer volume.
  const auto affine = run_scenario(Strategy::kGuess, one,
                                   {{Resources{8, 8e9, 2e9}, 0.0}}, tasks);
  EXPECT_EQ(affine.stats.tasks_completed, 12);
  EXPECT_LT(affine.stats.transferred_bytes, result.stats.transferred_bytes / 2);
}

TEST(Master, OversizedFileStreamsThrough) {
  // A cacheable input larger than the cache never enters it; both tasks
  // pay the transfer.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);  // cache capacity 1 GB
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 2; ++i) {
    TaskSpec t = simple_task(i, 2.0, 100e6, 0.2e9);
    t.inputs.push_back(
        apps::environment_file("huge-ref.tar", 1500LL * 1000 * 1000, 0.0));
    tasks.push_back(std::move(t));
  }
  const auto result = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 2e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 2);
  EXPECT_EQ(result.stats.cache_hits, 0);
  EXPECT_EQ(result.stats.transferred_bytes, 2LL * 1500 * 1000 * 1000);
}

TEST(Master, PinnedEntriesSurviveCachePressure) {
  // Two concurrent tasks pin two different 500 MB envs in a 1 GB cache;
  // a third env cannot evict them while they run, so the third task
  // streams through — no eviction of pinned entries ever happens.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);
  cfg.guess = Resources{1.0, 1e9, 0.1e9};
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 3; ++i) {
    TaskSpec t = simple_task(i, 10.0, 100e6, 0.05e9);
    t.inputs.push_back(apps::environment_file("env-" + std::to_string(i),
                                              500LL * 1000 * 1000, 0.0));
    tasks.push_back(std::move(t));
  }
  const auto result = run_scenario(Strategy::kGuess, cfg,
                                   {{Resources{8, 8e9, 2e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 3);
}

}  // namespace
}  // namespace lfm::wq
