// Tests for the Work Queue master: resource packing, cache affinity,
// exhaustion retries, and the four strategies end-to-end on small workloads.
#include <gtest/gtest.h>

#include "apps/workload.h"
#include "wq/master.h"

namespace lfm::wq {
namespace {

using alloc::LabelerConfig;
using alloc::Resources;
using alloc::Strategy;

LabelerConfig node_config(double cores, double mem, double disk) {
  LabelerConfig c;
  c.whole_node = Resources{cores, mem, disk};
  c.guess = Resources{1.0, 1.5e9, 2e9};
  return c;
}

TaskSpec simple_task(uint64_t id, double runtime, double mem = 100e6,
                     double disk = 500e6) {
  TaskSpec t;
  t.id = id;
  t.category = "uniform";
  t.exec_seconds = runtime;
  t.true_cores = 1.0;
  t.true_peak = Resources{1.0, mem, disk};
  return t;
}

TEST(Master, SingleTaskCompletes) {
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(node_config(8, 8e9, 16e9));
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  master.submit(simple_task(1, 10.0));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_EQ(stats.tasks_failed, 0);
  EXPECT_GE(stats.makespan, 10.0);
  ASSERT_EQ(master.records().size(), 1u);
  EXPECT_EQ(master.records()[0].state, TaskState::kDone);
  EXPECT_GT(master.records()[0].finish_time, 0.0);
}

TEST(Master, UnmanagedRunsOneTaskPerWorker) {
  // 4 tasks of 10 s on one 8-core worker: Unmanaged serializes them.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  cfg.strategy = Strategy::kUnmanaged;
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 4; ++i) tasks.push_back(simple_task(i, 10.0));
  const auto result = run_scenario(Strategy::kUnmanaged, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 4);
  EXPECT_GE(result.stats.makespan, 40.0);
}

TEST(Master, OraclePacksTasksConcurrently) {
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 8; ++i) tasks.push_back(simple_task(i, 10.0));
  const auto result = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 8);
  // 8 one-core tasks on an 8-core node run together: ~10 s, not 80.
  EXPECT_LT(result.stats.makespan, 15.0);
  EXPECT_EQ(result.stats.exhaustion_retries, 0);
}

TEST(Master, GuessMemoryBoundLimitsPacking) {
  // Guess = 1.5 GB per task on an 8 GB node: only 5 run at once even though
  // 8 cores are free (the Fig 6 Guess-vs-Oracle gap).
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 16; ++i) tasks.push_back(simple_task(i, 10.0));
  const auto guess = run_scenario(Strategy::kGuess, cfg,
                                  {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  const auto oracle = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_GT(guess.stats.makespan, oracle.stats.makespan);
}

TEST(Master, ExhaustionRetriesAtWholeNode) {
  // A task needing 3 GB under a 1.5 GB Guess: first attempt exhausts, the
  // retry at whole-node succeeds.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  std::vector<TaskSpec> tasks = {simple_task(1, 10.0, 3e9)};
  const auto result = run_scenario(Strategy::kGuess, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 1);
  EXPECT_EQ(result.stats.exhaustion_retries, 1);
}

TEST(Master, RepeatedExhaustionEventuallyFails) {
  // A task that cannot fit even the whole node fails after max_retries.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  MasterConfig mc;
  mc.max_retries = 2;
  std::vector<TaskSpec> tasks = {simple_task(1, 5.0, 100e9)};  // 100 GB need
  const auto result = run_scenario(Strategy::kGuess, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks, {}, mc);
  EXPECT_EQ(result.stats.tasks_completed, 0);
  EXPECT_EQ(result.stats.tasks_failed, 1);
  EXPECT_GT(result.stats.exhaustion_retries, 0);
}

TEST(Master, AutoConvergesToLowRetries) {
  // Uniform workload under Auto: warmup at whole node, then tight packing
  // with few retries (<1% in the paper's HEP run; we allow some slack).
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  cfg.warmup_samples = 3;
  Rng rng(3);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 200; ++i) {
    tasks.push_back(simple_task(i, rng.uniform(5.0, 10.0),
                                rng.uniform(80e6, 110e6), rng.uniform(700e6, 1000e6)));
  }
  const auto result = run_scenario(Strategy::kAuto, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0},
                                    {Resources{8, 8e9, 16e9}, 0.0}},
                                   tasks);
  EXPECT_EQ(result.stats.tasks_completed, 200);
  EXPECT_LT(result.stats.exhaustion_retries, 10);
}

TEST(Master, StrategyOrderingOnUniformWorkload) {
  // The headline Figs 6-9 ordering: Oracle <= Auto < Guess-ish < Unmanaged.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  Rng rng(7);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 100; ++i) {
    tasks.push_back(simple_task(i, rng.uniform(5.0, 10.0),
                                rng.uniform(80e6, 110e6), rng.uniform(700e6, 900e6)));
  }
  std::vector<WorkerSpec> workers(4, {Resources{8, 8e9, 16e9}, 0.0});
  const double oracle =
      run_scenario(Strategy::kOracle, cfg, workers, tasks).stats.makespan;
  const double auto_t =
      run_scenario(Strategy::kAuto, cfg, workers, tasks).stats.makespan;
  const double unmanaged =
      run_scenario(Strategy::kUnmanaged, cfg, workers, tasks).stats.makespan;
  EXPECT_LE(oracle, auto_t * 1.05);
  EXPECT_LT(auto_t, unmanaged);
  EXPECT_GT(unmanaged, oracle * 3.0);  // several-fold, per the abstract
}

TEST(Master, CacheAffinityAvoidsRetransfers) {
  // Tasks sharing a big cacheable input: after warm-up, transfers stop.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  sim::NetworkParams np;
  np.bandwidth = 100e6;
  np.per_flow_bandwidth = 100e6;
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 20; ++i) {
    TaskSpec t = simple_task(i, 5.0);
    t.inputs.push_back(apps::environment_file("env.tar.gz", 200LL * 1000 * 1000, 2.0));
    tasks.push_back(std::move(t));
  }
  const auto result = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0},
                                    {Resources{8, 8e9, 16e9}, 0.0}},
                                   tasks, np);
  EXPECT_EQ(result.stats.tasks_completed, 20);
  // The environment transfers at most once per worker.
  EXPECT_LE(result.stats.transferred_bytes, 2LL * 200 * 1000 * 1000 + 1);
  EXPECT_GE(result.stats.cache_hits, 18);
}

TEST(Master, WorkersBecomeReadyOverTime) {
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 100.0});  // pilot connects late
  master.submit(simple_task(1, 5.0));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_GE(master.records()[0].start_time, 100.0);
}

TEST(Master, TaskLargerThanAnyWorkerNeverDispatches) {
  LabelerConfig cfg = node_config(4, 4e9, 8e9);
  cfg.strategy = alloc::Strategy::kOracle;
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  labeler.set_oracle("uniform", Resources{16.0, 1e9, 1e9});  // 16 cores needed
  Master master(sim, net, labeler);
  master.add_worker({Resources{4, 4e9, 8e9}, 0.0});
  master.submit(simple_task(1, 5.0));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 0);  // stays queued forever; sim drains
}

TEST(Master, UtilizationAccounting) {
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 8; ++i) tasks.push_back(simple_task(i, 10.0));
  const auto result = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 16e9}, 0.0}}, tasks);
  EXPECT_GT(result.stats.utilization(), 0.5);
  EXPECT_LE(result.stats.utilization(), 1.0 + 1e-9);
}

TEST(Master, CompletionCallbackFires) {
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(node_config(8, 8e9, 16e9));
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  int callbacks = 0;
  master.set_on_complete([&](const TaskRecord& r) {
    ++callbacks;
    EXPECT_EQ(r.state, TaskState::kDone);
  });
  master.submit(simple_task(1, 1.0));
  master.submit(simple_task(2, 1.0));
  master.run();
  EXPECT_EQ(callbacks, 2);
}

TEST(Master, OutputTransferAccounted) {
  sim::Simulation sim;
  sim::NetworkParams np;
  np.bandwidth = 50e6;
  np.per_flow_bandwidth = 50e6;
  sim::Network net(sim, np);
  alloc::Labeler labeler(node_config(8, 8e9, 16e9));
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  TaskSpec t = simple_task(1, 1.0);
  t.output_bytes = 50LL * 1000 * 1000;
  master.submit(std::move(t));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_GE(stats.makespan, 2.0);  // 1 s run + 1 s output transfer
  EXPECT_EQ(stats.transferred_bytes, 50LL * 1000 * 1000);
}

TEST(Master, FewerCoresStretchRuntime) {
  // A 4-way-parallel task granted 1 core takes ~4x longer.
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  cfg.strategy = alloc::Strategy::kOracle;
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  labeler.set_oracle("wide", Resources{1.0, 1e9, 1e9});  // deliberately narrow
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  TaskSpec t;
  t.id = 1;
  t.category = "wide";
  t.exec_seconds = 10.0;
  t.true_cores = 4.0;
  t.true_peak = Resources{4.0, 500e6, 500e6};
  master.submit(std::move(t));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_GE(stats.makespan, 39.0);  // 10 s * 4/1
}


TEST(Master, CacheEvictionLru) {
  // Worker cache holds two 400 MB files (disk 2 GB, cache_fraction 0.5 ->
  // 1 GB). Three apps round-robin: the LRU environment is evicted and
  // re-fetched, counted in cache_evictions.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);
  std::vector<TaskSpec> tasks;
  uint64_t id = 0;
  for (int round = 0; round < 4; ++round) {
    for (int app = 0; app < 3; ++app) {
      TaskSpec t = simple_task(++id, 5.0, 100e6, 0.2e9);
      t.category = "app";
      t.inputs.push_back(
          apps::environment_file("env-" + std::to_string(app), 400LL * 1000 * 1000, 0.1));
      tasks.push_back(std::move(t));
    }
  }
  // One single-slot worker so every task runs alone and apps alternate.
  // Affinity OFF: with it on, the affinity pass batches same-app tasks and
  // avoids the thrash (verified by CacheAffinityPreventsThrash below).
  LabelerConfig one = cfg;
  one.guess = Resources{8.0, 8e9, 0.5e9};
  MasterConfig mc;
  mc.cache_affinity = false;
  const auto result = run_scenario(Strategy::kGuess, one,
                                   {{Resources{8, 8e9, 2e9}, 0.0}}, tasks, {}, mc);
  EXPECT_EQ(result.stats.tasks_completed, 12);
  EXPECT_GE(result.stats.cache_evictions, 5);
  // Far more bytes than the 3-env minimum: evictions force re-transfers.
  EXPECT_GT(result.stats.transferred_bytes, 6LL * 400 * 1000 * 1000);

  // Same workload with affinity ON: the scheduler batches per application,
  // paying (nearly) the minimum transfer volume.
  const auto affine = run_scenario(Strategy::kGuess, one,
                                   {{Resources{8, 8e9, 2e9}, 0.0}}, tasks);
  EXPECT_EQ(affine.stats.tasks_completed, 12);
  EXPECT_LT(affine.stats.transferred_bytes, result.stats.transferred_bytes / 2);
}

TEST(Master, OversizedFileStreamsThrough) {
  // A cacheable input larger than the cache never enters it; both tasks
  // pay the transfer.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);  // cache capacity 1 GB
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 2; ++i) {
    TaskSpec t = simple_task(i, 2.0, 100e6, 0.2e9);
    t.inputs.push_back(
        apps::environment_file("huge-ref.tar", 1500LL * 1000 * 1000, 0.0));
    tasks.push_back(std::move(t));
  }
  const auto result = run_scenario(Strategy::kOracle, cfg,
                                   {{Resources{8, 8e9, 2e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 2);
  EXPECT_EQ(result.stats.cache_hits, 0);
  EXPECT_EQ(result.stats.transferred_bytes, 2LL * 1500 * 1000 * 1000);
}

TEST(Master, CrashDuringTransferKeepsCountsConsistent) {
  // Crash a worker while input transfers to it are still in flight: the
  // in-flight attempts requeue exactly once. The master throws if the
  // running-task accounting ever double-decrements, and a periodic probe
  // checks the public counters stay sane throughout.
  sim::Simulation sim;
  sim::NetworkParams np;
  np.bandwidth = 10e6;  // 100 MB input -> 10 s transfer
  np.per_flow_bandwidth = 10e6;
  sim::Network net(sim, np);
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  cfg.strategy = Strategy::kGuess;
  cfg.guess = Resources{4.0, 1e9, 2e9};  // two tasks per worker
  alloc::Labeler labeler(cfg);
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  for (uint64_t i = 1; i <= 4; ++i) {
    TaskSpec t = simple_task(i, 5.0);
    InputFile data;
    data.name = "data-" + std::to_string(i);
    data.size_bytes = 100LL * 1000 * 1000;
    t.inputs.push_back(std::move(data));
    master.submit(std::move(t));
  }
  std::function<void()> probe = [&] {
    EXPECT_GE(master.running_count(), 0);
    EXPECT_LE(master.running_count(), 4);
    EXPECT_GE(master.ready_count(), 0);
    if (sim.now() < 60.0) sim.schedule(1.0, probe);
  };
  sim.schedule(0.5, probe);
  sim.schedule(2.0, [&] { master.crash_worker(0); });  // mid-transfer
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 4);
  EXPECT_EQ(master.running_count(), 0);
  EXPECT_EQ(master.ready_count(), 0);
}

TEST(Master, CrashDuringReturnKeepsCountsConsistent) {
  // Crash while a finished task's output is returning: the success was not
  // yet recorded, so the task reruns and completes exactly once.
  sim::Simulation sim;
  sim::NetworkParams np;
  np.bandwidth = 10e6;  // 100 MB output -> 10 s return
  np.per_flow_bandwidth = 10e6;
  sim::Network net(sim, np);
  LabelerConfig cfg = node_config(8, 8e9, 16e9);
  cfg.strategy = Strategy::kGuess;
  cfg.guess = Resources{8.0, 1e9, 2e9};  // serialize: one task per worker
  alloc::Labeler labeler(cfg);
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  for (uint64_t i = 1; i <= 2; ++i) {
    TaskSpec t = simple_task(i, 5.0);
    t.output_bytes = 100LL * 1000 * 1000;
    master.submit(std::move(t));
  }
  // t in (5, 15): worker 0's task is in kReturning.
  sim.schedule(6.0, [&] { master.crash_worker(0); });
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 2);  // counted once despite the rerun
  EXPECT_EQ(master.running_count(), 0);
  EXPECT_EQ(master.ready_count(), 0);
  for (const auto& rec : master.records()) {
    EXPECT_EQ(rec.state, TaskState::kDone);
  }
}

TEST(Master, CancelThenCrashDuringTransferCountsOnce) {
  // A task cancelled mid-transfer whose worker then crashes must be
  // finalized exactly once (through the crash path), with no residual
  // running or ready entries.
  sim::Simulation sim;
  sim::NetworkParams np;
  np.bandwidth = 10e6;
  np.per_flow_bandwidth = 10e6;
  sim::Network net(sim, np);
  alloc::Labeler labeler(node_config(8, 8e9, 16e9));
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  TaskSpec t = simple_task(1, 5.0);
  InputFile data;
  data.name = "data";
  data.size_bytes = 100LL * 1000 * 1000;
  t.inputs.push_back(std::move(data));
  master.submit(std::move(t));
  sim.schedule(1.0, [&] { EXPECT_TRUE(master.cancel_task(1)); });
  sim.schedule(2.0, [&] { master.crash_worker(0); });
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_cancelled, 1);
  EXPECT_EQ(stats.tasks_completed, 0);
  EXPECT_EQ(master.running_count(), 0);
  EXPECT_EQ(master.ready_count(), 0);
  EXPECT_EQ(master.records()[0].state, TaskState::kDone);
}

TEST(Master, LruEvictionOrderIsLeastRecentlyUsed) {
  // Cache holds two 400 MB envs (1 GB capacity). Access pattern A B C B A:
  // C evicts A (the LRU), B's reuse refreshes it, so the final A evicts C —
  // leaving {B, A} cached. Affinity off so dispatch order stays FIFO, and a
  // whole-node guess serializes the tasks.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);
  cfg.strategy = Strategy::kGuess;
  cfg.guess = Resources{8.0, 1e9, 0.5e9};
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  MasterConfig mc;
  mc.cache_affinity = false;
  Master master(sim, net, labeler, mc);
  master.add_worker({Resources{8, 8e9, 2e9}, 0.0});
  const char* envs[] = {"env-A", "env-B", "env-C", "env-B", "env-A"};
  for (uint64_t i = 0; i < 5; ++i) {
    TaskSpec t = simple_task(i + 1, 2.0, 100e6, 0.1e9);
    t.inputs.push_back(
        apps::environment_file(envs[i], 400LL * 1000 * 1000, 0.0));
    master.submit(std::move(t));
  }
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 5);
  EXPECT_EQ(stats.cache_hits, 1);       // only the B reuse hits
  EXPECT_EQ(stats.cache_evictions, 2);  // A evicted for C, C evicted for A
  EXPECT_EQ(stats.transferred_bytes, 4LL * 400 * 1000 * 1000);
  EXPECT_TRUE(master.worker_caches(0, "env-A"));
  EXPECT_TRUE(master.worker_caches(0, "env-B"));
  EXPECT_FALSE(master.worker_caches(0, "env-C"));
  EXPECT_EQ(master.worker_cache_bytes(0), 2LL * 400 * 1000 * 1000);
}

TEST(Master, PinsBalanceAcrossExhaustionRetries) {
  // A task whose first attempt exhausts memory pins its environment twice
  // (once per attempt) and must unpin it twice; if a pin leaked, the later
  // eviction for env-2 would refuse and the file would stream through.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);  // cache capacity 1 GB
  cfg.strategy = Strategy::kGuess;
  cfg.guess = Resources{8.0, 1.5e9, 2e9};  // whole-node cores: serialized
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 2e9}, 0.0});
  TaskSpec heavy = simple_task(1, 5.0, 3e9, 0.2e9);  // exhausts the 1.5 GB guess
  heavy.inputs.push_back(
      apps::environment_file("env-1", 600LL * 1000 * 1000, 0.0));
  master.submit(std::move(heavy));
  TaskSpec follower = simple_task(2, 2.0, 100e6, 0.2e9);
  follower.inputs.push_back(
      apps::environment_file("env-2", 600LL * 1000 * 1000, 0.0));
  master.submit(std::move(follower));
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 2);
  EXPECT_EQ(stats.exhaustion_retries, 1);
  EXPECT_GE(stats.cache_hits, 1);       // the retry reuses env-1
  EXPECT_EQ(stats.cache_evictions, 1);  // env-1 evictable again -> evicted
  EXPECT_TRUE(master.worker_caches(0, "env-2"));
  EXPECT_FALSE(master.worker_caches(0, "env-1"));
}

TEST(Master, PinsBalanceAcrossCancellation) {
  // Cancelling a running task must unpin its inputs when the attempt is
  // discarded, leaving the environment evictable for later tasks.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);  // cache capacity 1 GB
  cfg.strategy = Strategy::kGuess;
  cfg.guess = Resources{8.0, 1e9, 2e9};  // serialized
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 2e9}, 0.0});
  TaskSpec victim = simple_task(1, 50.0, 100e6, 0.2e9);
  victim.inputs.push_back(
      apps::environment_file("env-1", 600LL * 1000 * 1000, 0.0));
  master.submit(std::move(victim));
  TaskSpec follower = simple_task(2, 2.0, 100e6, 0.2e9);
  follower.inputs.push_back(
      apps::environment_file("env-2", 600LL * 1000 * 1000, 0.0));
  master.submit(std::move(follower));
  sim.schedule(1.0, [&] { EXPECT_TRUE(master.cancel_task(1)); });
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_EQ(stats.tasks_cancelled, 1);
  EXPECT_EQ(stats.cache_evictions, 1);  // env-1 unpinned by the cancel
  EXPECT_TRUE(master.worker_caches(0, "env-2"));
  EXPECT_FALSE(master.worker_caches(0, "env-1"));
}

TEST(Master, MakeCacheRoomRefusesWhenEverythingPinned) {
  // Two long-running tasks pin the whole 1 GB cache. A third task arriving
  // while they run cannot cache its environment (everything pinned -> the
  // file streams through); once the pins drop, a later task with the same
  // environment caches it by evicting the finished tasks' files.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);  // cache capacity 1 GB
  cfg.strategy = Strategy::kGuess;
  cfg.guess = Resources{2.0, 1e9, 0.1e9};  // three concurrent on 8 cores
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(cfg);
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 2e9}, 0.0});
  for (uint64_t i = 1; i <= 2; ++i) {
    TaskSpec t = simple_task(i, 100.0, 100e6, 0.05e9);
    t.inputs.push_back(apps::environment_file("env-" + std::to_string(i),
                                              500LL * 1000 * 1000, 0.0));
    master.submit(std::move(t));
  }
  TaskSpec streamer = simple_task(3, 5.0, 100e6, 0.05e9);
  streamer.inputs.push_back(
      apps::environment_file("env-3", 500LL * 1000 * 1000, 0.0));
  master.submit(std::move(streamer));
  sim.schedule(10.0, [&] {
    // Both pinned envs plus the streamed task: env-3 must not be cached.
    EXPECT_TRUE(master.worker_caches(0, "env-1"));
    EXPECT_TRUE(master.worker_caches(0, "env-2"));
    EXPECT_FALSE(master.worker_caches(0, "env-3"));
    EXPECT_EQ(master.worker_cache_bytes(0), 2LL * 500 * 1000 * 1000);
  });
  sim.schedule(150.0, [&] {  // after everything finished: pins are gone
    TaskSpec again = simple_task(4, 5.0, 100e6, 0.05e9);
    again.inputs.push_back(
        apps::environment_file("env-3", 500LL * 1000 * 1000, 0.0));
    master.submit(std::move(again));
  });
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 4);
  EXPECT_GE(stats.cache_evictions, 1);  // room made once the pins dropped
  EXPECT_TRUE(master.worker_caches(0, "env-3"));
  // env-3 transferred twice: streamed while pinned, cached afterwards.
  EXPECT_EQ(stats.transferred_bytes, 4LL * 500 * 1000 * 1000);
}

TEST(Master, PinnedEntriesSurviveCachePressure) {
  // Two concurrent tasks pin two different 500 MB envs in a 1 GB cache;
  // a third env cannot evict them while they run, so the third task
  // streams through — no eviction of pinned entries ever happens.
  LabelerConfig cfg = node_config(8, 8e9, 2e9);
  cfg.guess = Resources{1.0, 1e9, 0.1e9};
  std::vector<TaskSpec> tasks;
  for (uint64_t i = 1; i <= 3; ++i) {
    TaskSpec t = simple_task(i, 10.0, 100e6, 0.05e9);
    t.inputs.push_back(apps::environment_file("env-" + std::to_string(i),
                                              500LL * 1000 * 1000, 0.0));
    tasks.push_back(std::move(t));
  }
  const auto result = run_scenario(Strategy::kGuess, cfg,
                                   {{Resources{8, 8e9, 2e9}, 0.0}}, tasks);
  EXPECT_EQ(result.stats.tasks_completed, 3);
}

TEST(Master, CrashWorkerOutOfRangeIdIsLoggedNoOp) {
  // Regression: crash_worker indexed workers_ without a bounds check, so an
  // out-of-range id (e.g. from a miscomputed fault selector) was undefined
  // behaviour. It must be a logged no-op that perturbs nothing.
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::Labeler labeler(node_config(8, 8e9, 16e9));
  Master master(sim, net, labeler);
  master.add_worker({Resources{8, 8e9, 16e9}, 0.0});
  master.submit(simple_task(1, 10.0));
  sim.schedule(2.0, [&] {
    master.crash_worker(-1);
    master.crash_worker(1);  // == pool size
    master.crash_worker(1000);
  });
  const MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 1);
  EXPECT_EQ(master.worker_crashes(), 0);
  EXPECT_EQ(master.live_worker_count(), 1);
}

}  // namespace
}  // namespace lfm::wq
