// Tests for runtime cluster provisioning: pilot submission under load,
// batch latency, idle release, and end-to-end elasticity with the master.
#include <gtest/gtest.h>

#include "apps/hep.h"
#include "sim/provisioner.h"
#include "util/error.h"
#include "wq/master.h"

namespace lfm::sim {
namespace {

TEST(Provisioner, RequiresCallbacks) {
  Simulation sim;
  EXPECT_THROW(Provisioner(sim, {}, 10.0, nullptr, [] {}, [] { return false; }),
               Error);
}

TEST(Provisioner, RejectsBadBounds) {
  Simulation sim;
  ProvisionerPolicy policy;
  policy.min_workers = 5;
  policy.max_workers = 2;
  EXPECT_THROW(Provisioner(sim, policy, 10.0, [] { return LoadSnapshot{}; }, [] {},
                           [] { return false; }),
               Error);
}

TEST(Provisioner, SubmitsPilotsForLoad) {
  Simulation sim;
  int live = 0;
  int tasks = 40;
  ProvisionerPolicy policy;
  policy.tasks_per_worker = 4.0;
  policy.max_workers = 8;
  policy.poll_interval = 5.0;
  Provisioner prov(
      sim, policy, /*batch latency=*/30.0,
      [&] { return LoadSnapshot{tasks, 0, live}; },
      [&] { ++live; }, [&] { return false; });
  prov.start();
  sim.run_until(100.0);
  // 40 tasks / 4 per worker = 10, capped at max_workers 8.
  EXPECT_EQ(prov.pilots_submitted(), 8);
  EXPECT_EQ(live, 8);
  prov.stop();
  sim.run();
}

TEST(Provisioner, BatchLatencyDelaysWorkers) {
  Simulation sim;
  int live = 0;
  double first_worker_at = -1.0;
  ProvisionerPolicy policy;
  policy.poll_interval = 1.0;
  Provisioner prov(
      sim, policy, /*batch latency=*/120.0,
      [&] { return LoadSnapshot{10, 0, live}; },
      [&] {
        ++live;
        if (first_worker_at < 0.0) first_worker_at = sim.now();
      },
      [&] { return false; });
  prov.start();
  sim.run_until(300.0);
  EXPECT_GE(first_worker_at, 120.0);
  prov.stop();
  sim.run();
}

TEST(Provisioner, PendingPilotsCapped) {
  Simulation sim;
  int live = 0;
  ProvisionerPolicy policy;
  policy.max_pending_pilots = 3;
  policy.max_workers = 100;
  policy.tasks_per_worker = 1.0;
  policy.poll_interval = 1.0;
  Provisioner prov(
      sim, policy, /*batch latency=*/1000.0,  // pilots never connect in window
      [&] { return LoadSnapshot{500, 0, live}; },
      [&] { ++live; }, [&] { return false; });
  prov.start();
  sim.run_until(5.5);
  EXPECT_EQ(prov.pilots_pending(), 3);
  prov.stop();
}

TEST(Provisioner, ReleasesIdleWorkersAfterHold) {
  Simulation sim;
  int live = 5;
  ProvisionerPolicy policy;
  policy.min_workers = 1;
  policy.poll_interval = 10.0;
  policy.idle_release_after = 60.0;
  Provisioner prov(
      sim, policy, 10.0, [&] { return LoadSnapshot{0, 0, live}; }, [&] { ++live; },
      [&] {
        --live;
        return true;
      });
  prov.start();
  sim.run();
  EXPECT_EQ(live, 1);  // drained to the floor, then quiesced
  EXPECT_EQ(prov.workers_released(), 4);
}

TEST(Provisioner, NoReleaseBeforeHoldExpires) {
  Simulation sim;
  int live = 5;
  ProvisionerPolicy policy;
  policy.min_workers = 0;
  policy.poll_interval = 10.0;
  policy.idle_release_after = 1000.0;
  Provisioner prov(
      sim, policy, 10.0, [&] { return LoadSnapshot{0, 0, live}; }, [&] { ++live; },
      [&] {
        --live;
        return true;
      });
  prov.start();
  sim.run_until(500.0);
  EXPECT_EQ(live, 5);
  prov.stop();
  sim.run();
}

TEST(Provisioner, ElasticPoolRunsWorkloadEndToEnd) {
  // Full loop: the master starts with ZERO workers; the provisioner watches
  // its queue, submits pilots through the batch system, and the workload
  // completes on the dynamically grown pool.
  Simulation sim;
  Network net(sim, {});
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{8, 8e9, 16e9};
  cfg.guess = alloc::Resources{1, 1e9, 2e9};
  cfg.strategy = alloc::Strategy::kGuess;
  alloc::Labeler labeler(cfg);
  wq::Master master(sim, net, labeler);

  ProvisionerPolicy policy;
  policy.max_workers = 10;
  policy.tasks_per_worker = 4.0;
  policy.poll_interval = 5.0;
  policy.idle_release_after = 50.0;
  Provisioner prov(
      sim, policy, /*batch latency=*/15.0,
      [&] {
        return LoadSnapshot{master.ready_count(), master.running_count(),
                            master.live_worker_count()};
      },
      [&] { master.add_worker({cfg.whole_node, sim.now()}); },
      [&] { return master.release_idle_worker(); });

  for (int i = 0; i < 40; ++i) {
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    t.category = "u";
    t.exec_seconds = 10.0;
    t.true_cores = 1.0;
    t.true_peak = alloc::Resources{1.0, 500e6, 1e9};
    master.submit(std::move(t));
  }
  prov.start();
  const wq::MasterStats stats = master.run();
  EXPECT_EQ(stats.tasks_completed, 40);
  EXPECT_GT(prov.workers_started(), 0);
  // Pool scaled up (several pilots) and released back down when idle.
  EXPECT_GE(prov.pilots_submitted(), 5);
  EXPECT_GT(prov.workers_released(), 0);
  // First tasks could not start before the batch latency elapsed.
  EXPECT_GE(master.records()[0].start_time, 15.0);
}

}  // namespace
}  // namespace lfm::sim
