// Table III: the HPC systems used in the evaluation — node shapes, batch
// systems, filesystem characteristics. A configuration inventory printout
// of the site presets every other experiment runs against.
#include "bench_common.h"
#include "sim/site.h"
#include "util/units.h"

namespace {

using namespace lfm;
using namespace lfm::sim;

void print_table() {
  lfm::bench::print_header("Table III: evaluation sites", "Table III of the paper");
  std::printf("%-8s %-22s %-10s %6s %10s %8s %-20s\n", "site", "facility", "batch",
              "cores", "memory", "nodes", "runtimes");
  for (const Site& site : all_sites()) {
    std::string runtimes;
    for (const auto& r : site.runtimes) {
      if (!runtimes.empty()) runtimes += ",";
      runtimes += r.name;
    }
    std::printf("%-8s %-22s %-10s %6d %10s %8d %-20s\n", site.name.c_str(),
                site.facility.c_str(), site.batch_system.c_str(), site.node.cores,
                format_bytes(site.node.memory_bytes).c_str(), site.max_nodes,
                runtimes.c_str());
  }
  std::printf("\nShared filesystem model parameters:\n");
  std::printf("%-8s %14s %14s %12s %14s\n", "site", "md op (us)", "md cap (op/s)",
              "exponent", "agg bw (GB/s)");
  for (const Site& site : all_sites()) {
    std::printf("%-8s %14.0f %14.0f %12.2f %14.0f\n", site.name.c_str(),
                site.shared_fs.metadata_op_seconds * 1e6,
                site.shared_fs.metadata_capacity, site.shared_fs.contention_exponent,
                site.shared_fs.aggregate_bandwidth / 1e9);
  }
}

void BM_site_construction(benchmark::State& state) {
  for (auto _ : state) {
    const auto sites = all_sites();
    benchmark::DoNotOptimize(sites.size());
  }
}
BENCHMARK(BM_site_construction);

}  // namespace

LFM_BENCH_MAIN(print_table)
