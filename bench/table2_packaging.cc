// Table II: package analysis/creation/run costs, packed size, and transitive
// dependency counts for the interpreter, NumPy, popular scientific PyPI
// packages, and the three applications.
//
// The "analyze" column is REAL: it times this repo's static dependency
// analyzer (mini-Python parse + import scan + solver) on a synthetic user
// function importing the package. Create/pack/run use the calibrated cost
// model on Theta. Paper shape: analyze << create; costs and sizes grow with
// dependency count; TF/MXNet and the applications dominate.
#include <chrono>

#include "bench_common.h"
#include "flow/plan.h"
#include "pkg/index.h"
#include "sim/envdist.h"
#include "util/units.h"

namespace {

using namespace lfm;

struct Row {
  const char* package;
  const char* import_name;  // what the user function imports
};

const Row kRows[] = {
    {"python", ""},
    {"numpy", "numpy"},
    {"scipy", "scipy"},
    {"pandas", "pandas"},
    {"scikit-learn", "sklearn"},
    {"matplotlib", "matplotlib"},
    {"tensorflow", "tensorflow"},
    {"mxnet", "mxnet"},
    {"coffea", "coffea"},                        // HEP application
    {"candle-drugscreen", "candle"},             // drug screening application
    {"gdc-dnaseq-pipeline", "gdc_pipeline"},     // genomics application
};

std::string function_source(const std::string& import_name) {
  std::string src = "def task(x):\n";
  if (!import_name.empty()) src += "    import " + import_name + "\n";
  src += "    return x\n";
  return src;
}

// Time the real analyzer COLD: parse + scan + pin + solve on every rep,
// through the explicit uncached entry points so the content-addressed memo
// (which would answer in O(1) from rep 2 on) cannot hide the analyzer cost
// this column documents. scale_analysis reports the warm side.
double measure_analyze_seconds(const std::string& import_name,
                               const pkg::PackageIndex& index) {
  const std::string src = function_source(import_name);
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kReps = 50;
  for (int i = 0; i < kReps; ++i) {
    const auto plan = flow::plan_function_dependencies_uncached(src, "task", index);
    const pkg::Solver solver(index);
    const auto resolution = solver.resolve_uncached(plan.requirements);
    benchmark::DoNotOptimize(resolution.ok());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
         kReps;
}

void print_table() {
  lfm::bench::print_header(
      "Table II: package analyze/create/run costs, size, dependency count",
      "Table II of the paper");
  const pkg::PackageIndex& index = pkg::standard_index();
  const sim::Site site = sim::theta();
  const sim::EnvDistModel model(site);
  pkg::Solver solver(index);

  std::printf("%-20s %12s %11s %10s %9s %10s %6s\n", "package", "analyze(ms)*",
              "create(s)", "pack(s)", "run(s)", "size", "deps");
  for (const Row& row : kRows) {
    const auto resolution = solver.resolve({pkg::Requirement::parse(row.package)});
    if (!resolution.ok()) {
      std::printf("%-20s  UNRESOLVABLE: %s\n", row.package, resolution.error().c_str());
      continue;
    }
    const pkg::Environment env(row.package, resolution.value());
    const auto costs = model.packaging_costs(env);
    const double analyze_real = measure_analyze_seconds(row.import_name, index);
    std::printf("%-20s %12.2f %11.1f %10.1f %9.1f %10s %6d\n", row.package,
                analyze_real * 1e3, costs.create_seconds, costs.pack_seconds,
                costs.run_seconds, format_bytes(costs.packed_size_bytes).c_str(),
                costs.dependency_count);
  }
  std::printf("(* analyze = measured wall time of this repo's real analyzer;\n"
              "   create/pack/run from the calibrated Theta cost model)\n");
}

void BM_static_analysis(benchmark::State& state) {
  // Cold: the full lex/parse/scan/pin pipeline per iteration.
  const pkg::PackageIndex& index = pkg::standard_index();
  const std::string src = function_source("tensorflow");
  for (auto _ : state) {
    const auto plan = flow::plan_function_dependencies_uncached(src, "task", index);
    benchmark::DoNotOptimize(plan.requirements.size());
  }
}
BENCHMARK(BM_static_analysis);

void BM_static_analysis_warm(benchmark::State& state) {
  // Warm: the content-addressed plan memo answers from the second call on.
  const pkg::PackageIndex& index = pkg::standard_index();
  const std::string src = function_source("tensorflow");
  for (auto _ : state) {
    const auto plan = flow::plan_function_dependencies(src, "task", index);
    benchmark::DoNotOptimize(plan.requirements.size());
  }
}
BENCHMARK(BM_static_analysis_warm);

void BM_solver_tensorflow(benchmark::State& state) {
  const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  for (auto _ : state) {
    const auto result = solver.resolve_uncached({pkg::Requirement::parse("tensorflow")});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_solver_tensorflow);

void BM_solver_tensorflow_warm(benchmark::State& state) {
  const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  for (auto _ : state) {
    const auto result = solver.resolve({pkg::Requirement::parse("tensorflow")});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_solver_tensorflow_warm);

}  // namespace

LFM_BENCH_MAIN(print_table)
