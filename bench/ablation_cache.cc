// Ablation: cache-affine scheduling (DESIGN.md §6).
//
// The paper's Work Queue "prefers to schedule tasks where needed data is
// cached". This ablation reruns the HEP workload with cache affinity
// enabled/disabled at several network bandwidths: affinity matters exactly
// when the environment transfer is expensive relative to task runtime.
#include "apps/hep.h"
#include "apps/workload.h"
#include "util/rng.h"
#include "bench_common.h"
#include "sim/site.h"
#include "util/strings.h"
#include "util/units.h"

namespace {

using namespace lfm;

alloc::LabelerConfig cfg() {
  alloc::LabelerConfig c;
  c.whole_node = alloc::Resources{8, 8e9, 2e9};
  c.guess = apps::hep::guess_allocation();
  c.warmup_samples = 2;
  return c;
}

// Four applications share the pool, each with its own 400 MB environment.
// With affinity ON the master routes each app's tasks to workers that
// already hold its environment (workers specialize); OFF, tasks land on
// whichever worker is most loaded, so every worker eventually fetches every
// environment.
std::vector<wq::TaskSpec> multi_app_tasks(int per_app) {
  Rng rng(23);
  std::vector<wq::TaskSpec> tasks;
  uint64_t id = 0;
  // Round-robin interleave: the four applications run concurrently.
  for (int i = 0; i < per_app; ++i) {
    for (int app = 0; app < 4; ++app) {
      wq::TaskSpec t;
      t.id = ++id;
      t.category = strformat("app-%d", app);
      t.inputs.push_back(apps::environment_file(strformat("env-%d.tar.gz", app),
                                                400LL * 1000 * 1000, 3.0));
      t.exec_seconds = rng.uniform(20.0, 40.0);
      t.true_cores = 1.0;
      t.true_peak = alloc::Resources{1.0, 100e6, 0.4e9};
      t.peak_fraction = 0.5;
      tasks.push_back(std::move(t));
    }
  }
  return tasks;
}

void print_table() {
  lfm::bench::print_header("Ablation: cache-affine dispatch on/off",
                           "DESIGN.md ablation (mechanism behind Figs 6-9)");
  const auto tasks = multi_app_tasks(50);
  // 2 GB of disk per worker, half reserved for the cache: room for TWO of
  // the four 400 MB environments -> placement decides how much thrashing.
  const std::vector<wq::WorkerSpec> workers(
      8, wq::WorkerSpec{alloc::Resources{8, 8e9, 2e9}, 0.0});

  std::printf("%-16s %14s %14s %12s %12s %9s %9s\n", "master uplink",
              "affinity on (s)", "affinity off (s)", "bytes on", "bytes off",
              "evict on", "evict off");
  for (const double gbps : {10.0, 1.0, 0.25}) {
    sim::NetworkParams net;
    net.bandwidth = gbps * 125e6;  // Gb/s -> bytes/s
    net.per_flow_bandwidth = net.bandwidth;

    wq::MasterConfig on;
    on.cache_affinity = true;
    wq::MasterConfig off;
    off.cache_affinity = false;
    const auto with_affinity =
        wq::run_scenario(alloc::Strategy::kOracle, cfg(), workers, tasks, net, on);
    const auto without =
        wq::run_scenario(alloc::Strategy::kOracle, cfg(), workers, tasks, net, off);
    std::printf("%-16s %14.1f %14.1f %12s %12s %9lld %9lld\n",
                strformat("%.2f Gb/s", gbps).c_str(),
                with_affinity.stats.makespan, without.stats.makespan,
                format_bytes(with_affinity.stats.transferred_bytes).c_str(),
                format_bytes(without.stats.transferred_bytes).c_str(),
                static_cast<long long>(with_affinity.stats.cache_evictions),
                static_cast<long long>(without.stats.cache_evictions));
  }
  std::printf("\n(expected: affinity moves fewer environment bytes — workers\n"
              " specialize per application — and wins outright on slow links)\n");
}

void BM_cache_on(benchmark::State& state) {
  apps::hep::Params params;
  params.tasks = 100;
  const auto tasks = apps::hep::generate(params);
  const std::vector<wq::WorkerSpec> workers(
      10, wq::WorkerSpec{alloc::Resources{8, 8e9, 16e9}, 0.0});
  for (auto _ : state) {
    const auto r = wq::run_scenario(alloc::Strategy::kOracle, cfg(), workers, tasks,
                                    sim::nd_crc().network);
    benchmark::DoNotOptimize(r.stats.makespan);
  }
}
BENCHMARK(BM_cache_on);

}  // namespace

LFM_BENCH_MAIN(print_table)
