// Figure 9: funcX image-classification benchmark (Keras ResNet) with LFMs
// in place of containers — Auto and Guess (with LFMs) vs Unmanaged (without),
// scaling tasks (left) and workers (right, workload proportional).
//
// Paper shape: auto labeling + LFMs achieve near-oracle performance and
// significantly outperform the unmanaged, non-LFM case.
#include "apps/imageclass.h"
#include "bench_common.h"
#include "sim/site.h"

namespace {

using namespace lfm;

alloc::LabelerConfig node_config() {
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{16.0, 64e9, 200e9};  // funcX endpoint node
  cfg.warmup_samples = 2;
  cfg.guess = apps::imageclass::guess_allocation();
  return cfg;
}

std::vector<wq::WorkerSpec> ep_workers(int count) {
  return std::vector<wq::WorkerSpec>(
      static_cast<size_t>(count),
      wq::WorkerSpec{alloc::Resources{16.0, 64e9, 200e9}, 0.0});
}

void print_row(const std::string& x, double auto_t, double guess_t,
               double unmanaged_t) {
  std::printf("%-12s %12.1f %12.1f %14.1f %14.1fx\n", x.c_str(), auto_t, guess_t,
              unmanaged_t, unmanaged_t / auto_t);
}

void run_sweep(const char* label, const std::vector<std::pair<int, int>>& points) {
  // points: (tasks, workers)
  std::printf("%-12s %12s %12s %14s %14s\n", label, "auto(s)", "guess(s)",
              "unmanaged(s)", "speedup");
  for (const auto& [tasks, workers] : points) {
    apps::imageclass::Params params;
    params.tasks = tasks;
    const auto task_set = apps::imageclass::generate(params);
    const sim::NetworkParams net = sim::theta().network;
    const double auto_t = wq::run_scenario(alloc::Strategy::kAuto, node_config(),
                                           ep_workers(workers), task_set, net)
                              .stats.makespan;
    const double guess_t = wq::run_scenario(alloc::Strategy::kGuess, node_config(),
                                            ep_workers(workers), task_set, net)
                               .stats.makespan;
    const double unmanaged_t =
        wq::run_scenario(alloc::Strategy::kUnmanaged, node_config(),
                         ep_workers(workers), task_set, net)
            .stats.makespan;
    print_row(std::to_string(tasks) + "/" + std::to_string(workers), auto_t, guess_t,
              unmanaged_t);
  }
}

void print_table() {
  lfm::bench::print_header(
      "Figure 9: funcX ResNet image classification, LFM vs non-LFM",
      "Figure 9 of the paper");

  std::printf("\n(left) varying task count on 4 endpoint workers (tasks/workers)\n");
  run_sweep("t/w", {{50, 4}, {100, 4}, {200, 4}, {400, 4}});

  std::printf("\n(right) workload proportional to workers (50 tasks per worker)\n");
  run_sweep("t/w", {{50, 1}, {100, 2}, {200, 4}, {400, 8}});

  std::printf("\n(paper shape: auto ~ near-oracle; unmanaged several-fold slower;\n"
              " right-hand sweep flat = LFM packing preserves weak scaling)\n");
}

void BM_funcx_auto(benchmark::State& state) {
  apps::imageclass::Params params;
  params.tasks = 200;
  const auto tasks = apps::imageclass::generate(params);
  const sim::NetworkParams net = sim::theta().network;
  for (auto _ : state) {
    const auto result = wq::run_scenario(alloc::Strategy::kAuto, node_config(),
                                         ep_workers(4), tasks, net);
    benchmark::DoNotOptimize(result.stats.makespan);
  }
}
BENCHMARK(BM_funcx_auto);

}  // namespace

LFM_BENCH_MAIN(print_table)
