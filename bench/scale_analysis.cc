// Analysis scaling sweep: cold vs warm dependency-plan throughput as the
// submission count grows (1k / 10k / 100k submissions of 10 distinct
// functions — the Parsl-scale common case where the same few task functions
// are submitted many thousands of times).
//
// Unlike the fig* binaries this does not reproduce a paper figure; it
// measures the content-addressed analysis caches themselves. Each row runs
// the full cold pipeline (lex + parse + scan + pin per submission, via the
// explicit *_uncached entry points) and the warm pipeline (plan memo hits),
// then fans the same workload across the analyze_all worker pool at several
// thread counts. Parse counts come from the shared parse-cache stats: the
// warm path must parse each distinct module at most once.
//
// Usage:
//   scale_analysis              # default sweep: 1k, 10k, 100k submissions
//   scale_analysis N [N ...]    # explicit submission counts (CI smoke)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "flow/analysis.h"
#include "flow/plan.h"
#include "pkg/index.h"
#include "pkg/solver.h"
#include "pysrc/parse_cache.h"

namespace {

using namespace lfm;

constexpr int kDistinctFunctions = 10;

// Ten distinct task functions with distinct import sets drawn from the
// standard corpus, so each has its own parse/plan/solve cache entry.
std::vector<std::string> make_function_sources() {
  const char* imports[kDistinctFunctions] = {
      "numpy",      "scipy",              "pandas",     "sklearn",
      "matplotlib", "tensorflow",         "mxnet",      "numpy, pandas",
      "scipy, matplotlib", "requests, numpy",
  };
  std::vector<std::string> sources;
  sources.reserve(kDistinctFunctions);
  for (int i = 0; i < kDistinctFunctions; ++i) {
    std::string src = "def task" + std::to_string(i) + "(x):\n";
    src += "    import " + std::string(imports[i]) + "\n";
    src += "    return x + " + std::to_string(i) + "\n";
    sources.push_back(std::move(src));
  }
  return sources;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void run_row(int submissions, const std::vector<std::string>& sources,
             const pkg::PackageIndex& index) {
  // Fresh caches per row so the parse column counts this row only.
  flow::clear_plan_cache();
  pysrc::clear_parse_cache();

  // Cold: the full pipeline on every submission.
  size_t checksum_cold = 0;
  const auto t_cold = std::chrono::steady_clock::now();
  for (int i = 0; i < submissions; ++i) {
    const std::string& src = sources[static_cast<size_t>(i % kDistinctFunctions)];
    const auto plan = flow::plan_function_dependencies_uncached(
        src, "task" + std::to_string(i % kDistinctFunctions), index);
    checksum_cold += plan.requirements.size();
  }
  const double cold_wall = seconds_since(t_cold);

  // Warm: same submissions through the memoized entry point. The first ten
  // calls miss and parse; every later submission is a content-hash hit.
  size_t checksum_warm = 0;
  const auto t_warm = std::chrono::steady_clock::now();
  for (int i = 0; i < submissions; ++i) {
    const std::string& src = sources[static_cast<size_t>(i % kDistinctFunctions)];
    const auto plan = flow::plan_function_dependencies(
        src, "task" + std::to_string(i % kDistinctFunctions), index);
    checksum_warm += plan.requirements.size();
  }
  const double warm_wall = seconds_since(t_warm);
  const auto parse_stats = pysrc::parse_cache_stats();

  if (checksum_cold != checksum_warm) {
    std::fprintf(stderr, "FATAL: cold/warm plans disagree (%zu vs %zu)\n",
                 checksum_cold, checksum_warm);
    std::exit(1);
  }

  std::printf("%11d %10.3f %11.0f %10.3f %11.0f %8.1fx %7lld\n", submissions,
              cold_wall, submissions / cold_wall, warm_wall,
              submissions / warm_wall, cold_wall / warm_wall,
              static_cast<long long>(parse_stats.misses));
  std::fflush(stdout);
}

void run_pool_row(int threads, const std::vector<flow::AnalysisRequest>& requests,
                  const pkg::PackageIndex& index) {
  flow::clear_plan_cache();
  pysrc::clear_parse_cache();
  const auto t0 = std::chrono::steady_clock::now();
  const auto plans = flow::analyze_all(requests, index, threads);
  const double wall = seconds_since(t0);
  size_t checksum = 0;
  for (const auto& plan : plans) checksum += plan.requirements.size();
  std::printf("%11zu %8d %10.3f %12.0f %9zu %7lld\n", requests.size(), threads,
              wall, requests.size() / wall, checksum,
              static_cast<long long>(pysrc::parse_cache_stats().misses));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> rows;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      char* end = nullptr;
      const long n = std::strtol(argv[i], &end, 10);
      if (!end || *end != '\0' || n <= 0) {
        std::fprintf(stderr, "usage: %s [submissions]...\n", argv[0]);
        return 1;
      }
      rows.push_back(static_cast<int>(n));
    }
  } else {
    rows = {1000, 10000, 100000};
  }

  const std::vector<std::string> sources = make_function_sources();
  const pkg::PackageIndex& index = pkg::standard_index();

  std::printf(
      "Analysis scaling sweep: %d distinct functions, cold vs warm plans\n",
      kDistinctFunctions);
  std::printf("%11s %10s %11s %10s %11s %9s %7s\n", "submissions", "cold(s)",
              "cold/s", "warm(s)", "warm/s", "speedup", "parses");
  for (const int n : rows) run_row(n, sources, index);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> thread_counts = {1, 2, 4, hw > 4 ? hw : 8};

  // Hit-dominated pool: the Parsl-scale duplicate workload. Nearly every
  // request is a plan-cache hit, so throughput is bounded by the shared
  // cache mutex, not by core count — extra threads buy nothing here (the
  // warm single-threaded loop above is already the fast path).
  std::printf("\nanalyze_all pool, %d distinct functions (hit-dominated)\n",
              kDistinctFunctions);
  std::printf("%11s %8s %10s %12s %9s %7s\n", "submissions", "threads",
              "wall(s)", "plans/s", "checksum", "parses");
  const int pool_submissions = rows.back();
  std::vector<flow::AnalysisRequest> duplicate_requests;
  duplicate_requests.reserve(static_cast<size_t>(pool_submissions));
  for (int i = 0; i < pool_submissions; ++i) {
    const int f = i % kDistinctFunctions;
    duplicate_requests.push_back(
        {sources[static_cast<size_t>(f)], "task" + std::to_string(f)});
  }
  for (const int threads : thread_counts) {
    run_pool_row(threads, duplicate_requests, index);
  }

  // Miss-dominated pool: every source distinct, so every request runs the
  // real parse+scan+pin pipeline (outside the cache locks). This is where
  // the worker pool scales — the bulk-registration cold start.
  const int distinct = pool_submissions / 5 > 0 ? pool_submissions / 5 : 1;
  std::printf("\nanalyze_all pool, all-distinct sources (miss-dominated)\n");
  std::printf("%11s %8s %10s %12s %9s %7s\n", "submissions", "threads",
              "wall(s)", "plans/s", "checksum", "parses");
  std::vector<flow::AnalysisRequest> distinct_requests;
  distinct_requests.reserve(static_cast<size_t>(distinct));
  for (int i = 0; i < distinct; ++i) {
    std::string src = "def job" + std::to_string(i) + "(x):\n";
    src += "    import " + std::string(i % 2 == 0 ? "numpy" : "scipy") + "\n";
    src += "    return x * " + std::to_string(i) + "\n";
    distinct_requests.push_back({std::move(src), "job" + std::to_string(i)});
  }
  for (const int threads : thread_counts) {
    run_pool_row(threads, distinct_requests, index);
  }
  return 0;
}
