// Chaos soak harness: seeded fault campaigns against the WQ master.
//
// Each soak seed compiles a chaos::Plan (worker crashes/rejoins, network
// degradation and partitions, filesystem stalls, stragglers, spurious
// monitor kills), arms it through the simulation, runs a multi-category
// workload to completion under a backoff retry policy, and checks the
// recovery subsystem's core invariants:
//   * exactly-once completion — on_complete fires exactly once per task id,
//     and completed + failed == submitted;
//   * no negative accounting — the master's internal checks did not throw
//     and the queue/running counters drained to zero;
//   * labeler consistency — one success observation per completed task and
//     one exhaustion observation per exhaustion retry, despite crash-lost
//     and spuriously killed attempts teaching the labeler nothing.
// Every Kth seed additionally replays a master crash: the same schedule is
// re-run, killed mid-flight, a fresh master is rebuilt with
// Master::recover(journal), and the final per-task outcomes must equal the
// uninterrupted run's (journaled results are never re-run, in-flight
// attempts re-run exactly once).
//
// Usage:
//   chaos_soak                         # 50 schedules, base seed 1000
//   chaos_soak --seeds N --seed S      # N schedules starting at seed S
//   chaos_soak --replay-every K        # replay-check every Kth seed (default 5)
//   chaos_soak --journal-dir DIR       # also write each seed's JSONL journal
//   chaos_soak --trace PATH            # Chrome trace JSON of the last seed
//   chaos_soak --overhead              # journal overhead on the dispatch hot
//                                      # path (min-of-5 interleaved, no chaos)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/labeler.h"
#include "chaos/injector.h"
#include "chaos/journal.h"
#include "chaos/plan.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "sim/network.h"
#include "util/rng.h"
#include "wq/master.h"

namespace {

using namespace lfm;

constexpr int kWorkers = 12;
constexpr int kTasks = 500;
constexpr int kCategories = 6;
constexpr int kImpossibleTasks = 3;  // exceed the whole node: must fail
constexpr double kHorizon = 200.0;   // fault window [0, kHorizon)

int g_violations = 0;

void check(bool ok, uint64_t seed, const char* what) {
  if (ok) return;
  ++g_violations;
  std::fprintf(stderr, "VIOLATION seed %llu: %s\n",
               static_cast<unsigned long long>(seed), what);
}

alloc::Resources worker_capacity() { return alloc::Resources{16.0, 64e9, 128e9}; }

alloc::LabelerConfig labeler_config() {
  alloc::LabelerConfig cfg;
  cfg.strategy = alloc::Strategy::kAuto;
  cfg.whole_node = worker_capacity();
  cfg.guess = alloc::Resources{1.0, 2e9, 4e9};
  cfg.warmup_samples = 3;
  return cfg;
}

wq::MasterConfig master_config(uint64_t seed) {
  wq::MasterConfig cfg;
  cfg.retry.backoff_base = 0.5;
  cfg.retry.backoff_multiplier = 2.0;
  cfg.retry.backoff_max = 30.0;
  cfg.retry.jitter_fraction = 0.2;
  cfg.retry.jitter_seed = seed;
  return cfg;
}

std::vector<wq::TaskSpec> make_tasks(uint64_t seed, int count = kTasks) {
  Rng rng(seed);
  std::vector<wq::TaskSpec> tasks;
  tasks.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    if (i < kImpossibleTasks) {
      // Peak above the whole node: exhausts at every rung of the retry
      // ladder and must fail identically in every (re)run.
      t.category = "impossible";
      t.exec_seconds = rng.uniform(2.0, 5.0);
      t.true_peak = alloc::Resources{1.0, 96e9, 1e9};
    } else {
      const int cat = i % kCategories;
      t.category = "cat-" + std::to_string(cat);
      t.exec_seconds = rng.uniform(10.0, 40.0);
      const double base_mem = (0.5 + 0.25 * cat) * 1e9;
      t.true_peak = alloc::Resources{1.0, rng.uniform(0.8, 1.2) * base_mem,
                                     rng.uniform(1e9, 2e9)};
      wq::InputFile env;
      env.name = "env-" + std::to_string(cat) + ".tar.gz";
      env.size_bytes = 200LL * 1000 * 1000;
      env.cacheable = true;
      env.unpack_seconds = 0.3;
      t.inputs.push_back(std::move(env));
    }
    t.true_cores = 1.0;
    t.output_bytes = 1000 * 1000;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

// One soak universe: simulation, network, labeler, master, fault plan.
struct Universe {
  sim::Simulation sim;
  sim::Network network;
  alloc::Labeler labeler;
  wq::Master master;
  std::unordered_map<uint64_t, int> completions;  // task id -> on_complete fires

  explicit Universe(uint64_t seed)
      : network(sim, {}), labeler(labeler_config()),
        master(sim, network, labeler, master_config(seed)) {
    master.set_on_complete(
        [this](const wq::TaskRecord& rec) { completions[rec.spec.id] += 1; });
  }
};

// Per-task outcome: 'c'ompleted or 'f'ailed (the soak never cancels).
std::unordered_map<uint64_t, char> outcomes(const wq::Master& master) {
  std::unordered_map<uint64_t, char> out;
  for (const auto& rec : master.records()) {
    out[rec.spec.id] = rec.finish_time >= 0.0 ? 'c' : 'f';
  }
  return out;
}

void populate(Universe& u, uint64_t seed) {
  for (int w = 0; w < kWorkers; ++w) u.master.add_worker({worker_capacity(), 0.0});
  for (auto& t : make_tasks(seed)) u.master.submit(std::move(t));
}

void soak_invariants(uint64_t seed, const Universe& u, const wq::MasterStats& stats) {
  check(stats.tasks_completed + stats.tasks_failed + stats.tasks_cancelled ==
            static_cast<int64_t>(u.master.records().size()),
        seed, "completed + failed + cancelled != submitted");
  check(u.master.ready_count() == 0, seed, "ready queue did not drain");
  check(u.master.running_count() == 0, seed, "running count did not drain");
  int64_t fired = 0;
  for (const auto& [id, count] : u.completions) {
    if (count != 1) check(false, seed, "on_complete fired != 1 for a task");
    fired += count;
  }
  check(fired == static_cast<int64_t>(u.master.records().size()), seed,
        "on_complete fired for a subset of tasks");
  for (const auto& rec : u.master.records()) {
    check(rec.state == wq::TaskState::kDone, seed, "task not terminal at drain");
  }
  // Labeler consistency: lost attempts (crashes, spurious kills) must not
  // have produced observations — except attempts killed with the result in
  // flight, whose run genuinely finished before the loss (lost_results).
  check(u.labeler.total_samples() == stats.tasks_completed + stats.lost_results,
        seed, "labeler success samples != completed tasks + lost results");
  check(u.labeler.total_exhaustions() == stats.exhaustion_retries, seed,
        "labeler exhaustions != exhaustion retries");
}

// Re-run the schedule, kill the master mid-flight, recover a fresh one from
// the journal, and demand the same final outcome per task id.
void replay_check(uint64_t seed, const chaos::ChaosConfig& campaign,
                  const std::unordered_map<uint64_t, char>& reference,
                  double kill_time) {
  // Phase 1: same seed, same faults, but the master dies at kill_time.
  Universe dying(seed);
  chaos::Journal journal;
  dying.master.set_journal(&journal);
  const chaos::Plan plan = chaos::compile_plan(seed, campaign, kWorkers, 1);
  chaos::Injector injector(dying.sim, dying.master, plan);
  injector.arm();
  populate(dying, seed);
  dying.sim.run_until(kill_time);

  // Phase 2: a fresh master rebuilds from the journal and finishes. The
  // journal round-trips through JSONL first — recovery reads what a real
  // restart would read off disk.
  const chaos::Journal replayed = chaos::Journal::from_jsonl(journal.to_jsonl());
  Universe recovered(seed);
  recovered.master.recover(replayed);
  const wq::MasterStats stats = recovered.master.run();

  const auto after = outcomes(recovered.master);
  check(after.size() == reference.size(), seed, "replay: task set mismatch");
  for (const auto& [id, outcome] : reference) {
    const auto it = after.find(id);
    if (it == after.end() || it->second != outcome) {
      check(false, seed, "replay: per-task outcome differs from uninterrupted run");
      break;
    }
  }
  // Exactly-once across the crash: completions journaled before the kill
  // must not re-fire on_complete in the recovered master.
  int64_t fired_twice = 0;
  for (const auto& [id, count] : dying.completions) {
    if (count > 0 && recovered.completions.count(id) > 0) ++fired_twice;
  }
  check(fired_twice == 0, seed, "replay: on_complete re-fired after recovery");
  check(stats.tasks_recovered > 0, seed, "replay: nothing was recovered");
}

struct SeedReport {
  wq::MasterStats stats;
  chaos::InjectorStats faults;
  int64_t requeues = 0;  // attempts lost to crashes + spurious kills
  size_t journal_records = 0;
  bool replayed = false;
};

SeedReport run_seed(uint64_t seed, bool do_replay, const std::string& journal_dir) {
  const chaos::ChaosConfig campaign = chaos::default_campaign(kHorizon);

  Universe u(seed);
  chaos::Journal journal =
      journal_dir.empty()
          ? chaos::Journal()
          : chaos::Journal(journal_dir + "/soak_" + std::to_string(seed) + ".jsonl");
  u.master.set_journal(&journal);
  const chaos::Plan plan = chaos::compile_plan(seed, campaign, kWorkers, 1);
  chaos::Injector injector(u.sim, u.master, plan);
  injector.arm();
  populate(u, seed);
  const wq::MasterStats stats = u.master.run();
  journal.flush();

  soak_invariants(seed, u, stats);

  SeedReport report;
  report.stats = stats;
  report.faults = injector.stats();
  for (const auto& rec : u.master.records()) report.requeues += rec.requeues;
  report.journal_records = journal.size();
  if (do_replay) {
    report.replayed = true;
    replay_check(seed, campaign, outcomes(u.master), 0.45 * stats.makespan);
  }
  return report;
}

// Journal overhead on the dispatch hot path: the chaos-free scale scenario,
// journal detached vs attached (in-memory sink), interleaved min-of-5 — the
// same method print_tracing_overhead uses for the obs recorder.
double time_scenario(chaos::Journal* journal) {
  constexpr int kOverheadTasks = 4 * kTasks;  // a stable, multi-ms base time
  Universe u(42);
  u.master.set_journal(journal);
  for (int w = 0; w < kWorkers; ++w) u.master.add_worker({worker_capacity(), 0.0});
  for (auto& t : make_tasks(42, kOverheadTasks)) u.master.submit(std::move(t));
  const auto start = std::chrono::steady_clock::now();
  u.master.run();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
      .count();
}

void print_journal_overhead() {
  std::printf("\n================================================================\n");
  std::printf("Journal overhead on the dispatch hot path\n");
  std::printf("(chaos-free scenario, journal off vs on; budget < 10%%)\n");
  std::printf("================================================================\n");
  constexpr int kReps = 5;
  time_scenario(nullptr);  // warm caches/allocator once
  double off = 1e30;
  double on = 1e30;
  size_t records = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    off = std::min(off, time_scenario(nullptr));
    chaos::Journal journal;
    on = std::min(on, time_scenario(&journal));
    records = journal.size();
  }
  std::printf("%-36s %11.1f ms\n", "dispatch path, journal off", off * 1e3);
  std::printf("%-36s %11.1f ms   (%zu records)\n", "dispatch path, journal on",
              on * 1e3, records);
  std::printf("%-36s %11.2f %%\n", "journal overhead",
              off > 0.0 ? (on - off) / off * 100.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 50;
  uint64_t base_seed = 1000;
  int replay_every = 5;
  std::string journal_dir;
  std::string trace_path;
  bool overhead = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--replay-every" && i + 1 < argc) {
      replay_every = std::atoi(argv[++i]);
    } else if (arg == "--journal-dir" && i + 1 < argc) {
      journal_dir = argv[++i];
      std::filesystem::create_directories(journal_dir);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--overhead") {
      overhead = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--seed S] [--replay-every K] "
                   "[--journal-dir DIR] [--trace PATH] [--overhead]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("Chaos soak: %d schedules, base seed %llu (%d workers x %d tasks, "
              "replay check every %d)\n",
              seeds, static_cast<unsigned long long>(base_seed), kWorkers, kTasks,
              replay_every);
  std::printf("%8s %7s %6s %6s %5s %5s %9s %9s %8s %7s\n", "seed", "faults",
              "done", "fail", "exh", "kill", "requeues", "makespan", "journal",
              "replay");

  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(i);
    const bool last = i == seeds - 1;
    if (!trace_path.empty() && last) {
      obs::Recorder::global().set_enabled(true);
      obs::Recorder::global().clear();
    }
    const bool do_replay = replay_every > 0 && i % replay_every == 0;
    const SeedReport r = run_seed(seed, do_replay, journal_dir);
    std::printf("%8llu %7lld %6lld %6lld %5lld %5lld %9lld %9.1f %8zu %7s\n",
                static_cast<unsigned long long>(seed), r.faults.total(),
                static_cast<long long>(r.stats.tasks_completed),
                static_cast<long long>(r.stats.tasks_failed),
                static_cast<long long>(r.stats.exhaustion_retries),
                static_cast<long long>(r.stats.spurious_kills),
                static_cast<long long>(r.requeues), r.stats.makespan,
                r.journal_records, r.replayed ? "ok" : "-");
    std::fflush(stdout);
  }

  if (!trace_path.empty()) {
    const auto slash = trace_path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : trace_path.substr(0, slash);
    const std::string file =
        slash == std::string::npos ? trace_path : trace_path.substr(slash + 1);
    const obs::Recorder& r = obs::Recorder::global();
    obs::write_text_file(dir, file, obs::chrome_trace_json(r.events()));
    std::printf("wrote %zu trace events to %s\n", r.event_count(),
                trace_path.c_str());
    obs::Recorder::global().set_enabled(false);
  }

  if (overhead) print_journal_overhead();

  if (g_violations > 0) {
    std::fprintf(stderr, "%d invariant violation(s)\n", g_violations);
    return 1;
  }
  std::printf("all invariants held across %d seeded fault schedules\n", seeds);
  return 0;
}
