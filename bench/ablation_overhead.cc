// Ablation: per-invocation LFM overhead — REAL measurements on this host.
//
// The paper's core claim is that the LFM "uses Python-specific techniques to
// keep overhead low enough that containment can be applied to individual
// invocations" (§II). This bench measures, on real processes:
//   * bare function call (no containment)
//   * monitored invocation (fork + pipe + /proc polling + reap)
//   * monitored invocation of INTERPRETED Python source (the full
//     python_app path: parse + interpret inside the LFM child)
//   * modeled container cold start per invocation (Table I), the
//     alternative the paper replaces
// and reports what fraction of a 1-second task each containment mode costs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <cstdio>

#include "alloc/labeler.h"
#include "flow/pyapp.h"
#include "monitor/lfm.h"
#include "obs/recorder.h"
#include "sim/network.h"
#include "sim/site.h"
#include "util/rng.h"
#include "wq/master.h"

namespace {

using namespace lfm;
using serde::Value;

Value native_fib_task(const Value& args) {
  const int64_t n = args.is_list() ? args.as_list()[0].as_int() : args.as_int();
  // Iterative fib: a cheap, deterministic payload.
  int64_t a = 0, b = 1;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t next = a + b;
    a = b;
    b = next;
  }
  return Value(a);
}

const char* kPySource = R"(
def fib(n):
    a = 0
    b = 1
    i = 0
    while i < n:
        a, b = b, a + b
        i = i + 1
    return a
)";

double time_once(const std::function<void()>& fn, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

void print_table() {
  std::printf("\n================================================================\n");
  std::printf("Ablation: per-invocation containment overhead (REAL measurements)\n");
  std::printf("(quantifies the §II 'lightweight' claim on this host)\n");
  std::printf("================================================================\n");

  constexpr int kReps = 30;
  const Value args = Value(serde::ValueList{Value(int64_t{80})});

  const double bare = time_once([&] { native_fib_task(args); }, 1000);

  monitor::MonitorOptions options;
  options.poll_interval = 0.002;
  const double monitored = time_once(
      [&] { monitor::run_monitored(native_fib_task, args, options); }, kReps);

  flow::PythonAppOptions py_options;
  const flow::App py = flow::python_app(kPySource, "fib", py_options);
  const double interpreted_only = time_once([&] { py.fn(args); }, 200);
  const double py_monitored =
      time_once([&] { monitor::run_monitored(py.fn, args, options); }, kReps);

  const double container = sim::docker_runtime().cold_start_seconds();

  std::printf("%-36s %14s %18s\n", "mode", "per call", "overhead on 1s task");
  const auto row = [&](const char* label, double seconds) {
    std::printf("%-36s %11.3f ms %17.2f%%\n", label, seconds * 1e3,
                seconds * 100.0);
  };
  row("bare C++ function call", bare);
  row("LFM (fork+pipe+poll+reap)", monitored);
  row("mini-Python interpret (no LFM)", interpreted_only);
  row("python_app under LFM (full path)", py_monitored);
  row("container per invocation (modeled)", container);
  std::printf(
      "\n(expected: LFM containment costs milliseconds per invocation —\n"
      " orders of magnitude under the per-invocation container alternative,\n"
      " and negligible against the paper's 40-70 s HEP tasks)\n");
}

// One Auto-strategy master scenario exercising the dispatch hot path:
// multi-category workload, cacheable environments, retries. Returns the
// wall-clock seconds for submit + run.
double time_master_scenario(int workers, int tasks) {
  sim::Simulation sim;
  sim::Network network(sim, {});
  alloc::LabelerConfig cfg;
  cfg.strategy = alloc::Strategy::kAuto;
  cfg.whole_node = alloc::Resources{16.0, 64e9, 128e9};
  cfg.guess = alloc::Resources{1.0, 2e9, 4e9};
  cfg.warmup_samples = 3;
  alloc::Labeler labeler(cfg);
  wq::Master master(sim, network, labeler);
  for (int w = 0; w < workers; ++w) {
    master.add_worker({alloc::Resources{16.0, 64e9, 128e9}, 0.0});
  }
  Rng rng(7);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < tasks; ++i) {
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    t.category = "cat-" + std::to_string(i % 4);
    t.exec_seconds = rng.uniform(20.0, 80.0);
    t.true_cores = 1.0;
    t.true_peak = alloc::Resources{1.0, rng.uniform(0.5e9, 1.5e9), 1e9};
    wq::InputFile env;
    env.name = "env-" + std::to_string(i % 4) + ".tar.gz";
    env.size_bytes = 100LL * 1000 * 1000;
    env.cacheable = true;
    t.inputs.push_back(std::move(env));
    master.submit(std::move(t));
  }
  master.run();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void print_tracing_overhead() {
  std::printf("\n================================================================\n");
  std::printf("Ablation: observability overhead on the dispatch hot path\n");
  std::printf("(same master scenario, obs::Recorder off vs on; target < 10%%)\n");
  std::printf("================================================================\n");

  constexpr int kWorkers = 20;
  constexpr int kTasks = 4000;
  constexpr int kReps = 5;
  obs::Recorder& recorder = obs::Recorder::global();

  // Interleaved min-of-N: the minimum is the run least disturbed by the
  // scheduler/allocator, so the ratio reflects instrumentation cost, not
  // machine noise.
  time_master_scenario(kWorkers, kTasks);  // warm caches/allocator once
  double off = 1e30;
  double on = 1e30;
  size_t events = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    recorder.set_enabled(false);
    off = std::min(off, time_master_scenario(kWorkers, kTasks));
    recorder.set_enabled(true);
    recorder.clear();
    on = std::min(on, time_master_scenario(kWorkers, kTasks));
    events = recorder.event_count();
  }
  recorder.set_enabled(false);
  recorder.clear();

  std::printf("%-36s %11.1f ms\n", "master dispatch, tracing off", off * 1e3);
  std::printf("%-36s %11.1f ms   (%zu events)\n", "master dispatch, tracing on",
              on * 1e3, events);
  std::printf("%-36s %11.2f %%\n", "tracing overhead",
              off > 0.0 ? (on - off) / off * 100.0 : 0.0);
}

void BM_bare_call(benchmark::State& state) {
  const Value args = Value(serde::ValueList{Value(int64_t{80})});
  for (auto _ : state) benchmark::DoNotOptimize(native_fib_task(args));
}
BENCHMARK(BM_bare_call);

void BM_lfm_invocation(benchmark::State& state) {
  const Value args = Value(serde::ValueList{Value(int64_t{80})});
  monitor::MonitorOptions options;
  options.poll_interval = 0.002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::run_monitored(native_fib_task, args, options));
  }
}
BENCHMARK(BM_lfm_invocation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  print_tracing_overhead();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
