// Ablation: per-invocation LFM overhead — REAL measurements on this host.
//
// The paper's core claim is that the LFM "uses Python-specific techniques to
// keep overhead low enough that containment can be applied to individual
// invocations" (§II). This bench measures, on real processes:
//   * bare function call (no containment)
//   * monitored invocation (fork + pipe + /proc polling + reap)
//   * monitored invocation of INTERPRETED Python source (the full
//     python_app path: parse + interpret inside the LFM child)
//   * modeled container cold start per invocation (Table I), the
//     alternative the paper replaces
// and reports what fraction of a 1-second task each containment mode costs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <cstdio>

#include "flow/pyapp.h"
#include "monitor/lfm.h"
#include "sim/site.h"

namespace {

using namespace lfm;
using serde::Value;

Value native_fib_task(const Value& args) {
  const int64_t n = args.is_list() ? args.as_list()[0].as_int() : args.as_int();
  // Iterative fib: a cheap, deterministic payload.
  int64_t a = 0, b = 1;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t next = a + b;
    a = b;
    b = next;
  }
  return Value(a);
}

const char* kPySource = R"(
def fib(n):
    a = 0
    b = 1
    i = 0
    while i < n:
        a, b = b, a + b
        i = i + 1
    return a
)";

double time_once(const std::function<void()>& fn, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() /
         reps;
}

void print_table() {
  std::printf("\n================================================================\n");
  std::printf("Ablation: per-invocation containment overhead (REAL measurements)\n");
  std::printf("(quantifies the §II 'lightweight' claim on this host)\n");
  std::printf("================================================================\n");

  constexpr int kReps = 30;
  const Value args = Value(serde::ValueList{Value(int64_t{80})});

  const double bare = time_once([&] { native_fib_task(args); }, 1000);

  monitor::MonitorOptions options;
  options.poll_interval = 0.002;
  const double monitored = time_once(
      [&] { monitor::run_monitored(native_fib_task, args, options); }, kReps);

  flow::PythonAppOptions py_options;
  const flow::App py = flow::python_app(kPySource, "fib", py_options);
  const double interpreted_only = time_once([&] { py.fn(args); }, 200);
  const double py_monitored =
      time_once([&] { monitor::run_monitored(py.fn, args, options); }, kReps);

  const double container = sim::docker_runtime().cold_start_seconds();

  std::printf("%-36s %14s %18s\n", "mode", "per call", "overhead on 1s task");
  const auto row = [&](const char* label, double seconds) {
    std::printf("%-36s %11.3f ms %17.2f%%\n", label, seconds * 1e3,
                seconds * 100.0);
  };
  row("bare C++ function call", bare);
  row("LFM (fork+pipe+poll+reap)", monitored);
  row("mini-Python interpret (no LFM)", interpreted_only);
  row("python_app under LFM (full path)", py_monitored);
  row("container per invocation (modeled)", container);
  std::printf(
      "\n(expected: LFM containment costs milliseconds per invocation —\n"
      " orders of magnitude under the per-invocation container alternative,\n"
      " and negligible against the paper's 40-70 s HEP tasks)\n");
}

void BM_bare_call(benchmark::State& state) {
  const Value args = Value(serde::ValueList{Value(int64_t{80})});
  for (auto _ : state) benchmark::DoNotOptimize(native_fib_task(args));
}
BENCHMARK(BM_bare_call);

void BM_lfm_invocation(benchmark::State& state) {
  const Value args = Value(serde::ValueList{Value(int64_t{80})});
  monitor::MonitorOptions options;
  options.poll_interval = 0.002;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor::run_monitored(native_fib_task, args, options));
  }
}
BENCHMARK(BM_lfm_invocation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
