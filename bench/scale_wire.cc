// Wire protocol throughput: v1 text vs v2 binary frames, single messages
// vs batch frames, for the two message shapes the data plane carries —
// task dispatches (many small stanzas) and payload-bearing results (the
// pickled function return travels base64-coded in v1, raw in v2).
//
// Prints a throughput/bytes table and, with --json, writes the same rows
// machine-readably (BENCH_wire.json in CI). With --check, exits nonzero
// unless v2+batching beats v1 by >= 5x on result round-trip throughput and
// shrinks payload-bearing result bytes by >= 25%.
//
// Usage:
//   scale_wire                        # default: 20000 messages per mode
//   scale_wire N                      # explicit message count
//   scale_wire --json BENCH_wire.json --check N
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "serde/pickle.h"
#include "wq/protocol.h"

namespace {

using namespace lfm;

constexpr size_t kBatch = 128;        // messages per v2 batch frame
constexpr size_t kPayloadItems = 64;  // entries in the pickled result dict

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// A realistic function result: a pickled dict of scalars and a bytes blob,
// ~1 KB on the wire — the shape the funcX-style Python tasks return.
serde::Bytes make_payload(std::mt19937_64& rng) {
  serde::ValueDict d;
  serde::ValueList samples;
  for (size_t i = 0; i < kPayloadItems; ++i) {
    samples.push_back(serde::Value(static_cast<double>(rng() % 100000) / 100.0));
  }
  d["samples"] = serde::Value(std::move(samples));
  serde::Bytes blob(512);
  for (auto& b : blob) b = static_cast<uint8_t>(rng());
  d["blob"] = serde::Value(std::move(blob));
  d["status"] = serde::Value(std::string("ok"));
  d["n"] = serde::Value(static_cast<int64_t>(kPayloadItems));
  return serde::dumps(serde::Value(std::move(d)));
}

std::vector<wq::TaskMessage> make_tasks(size_t count) {
  std::vector<wq::TaskMessage> tasks;
  tasks.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    wq::TaskMessage msg;
    msg.task_id = i + 1;
    msg.category = "hep-analysis";
    msg.command_line = "python lfm_wrapper.py fn.pkl args.pkl --out hist.pkl";
    msg.allocation = alloc::Resources{2.0, 1.5e9, 2.0e9};
    msg.infiles.push_back({"hep-conda-env.tar.gz", 240000000, true});
    msg.infiles.push_back({"events-" + std::to_string(i % 997) + ".root",
                           static_cast<int64_t>(500000 + i % 4096), false});
    msg.outfiles.push_back("hist-" + std::to_string(i % 997) + ".pkl");
    tasks.push_back(std::move(msg));
  }
  return tasks;
}

std::vector<wq::ResultMessage> make_results(size_t count) {
  std::mt19937_64 rng(0xBEEF);
  const serde::Bytes payload = make_payload(rng);
  std::vector<wq::ResultMessage> results;
  results.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    wq::ResultMessage msg;
    msg.task_id = i + 1;
    msg.exit_code = 0;
    msg.cores_used = 1.85;
    msg.memory_peak_bytes = 88000000 + static_cast<int64_t>(i % 8192);
    msg.disk_peak_bytes = 880000000;
    msg.wall_seconds = 63.25;
    msg.payload = payload;
    results.push_back(std::move(msg));
  }
  return results;
}

struct Row {
  std::string mode;
  double msgs_per_sec = 0.0;
  double bytes_per_msg = 0.0;
};

// Encode + decode every message (round trip, as the master/worker pair pays
// it); returns per-message throughput and wire bytes.
template <typename Msg, typename Decode>
Row run_single(const char* mode, const std::vector<Msg>& msgs,
               wq::WireVersion version, Decode decode) {
  size_t bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& msg : msgs) {
    const std::string wire = wq::encode(msg, version);
    bytes += wire.size();
    (void)decode(wire);
  }
  const double dt = seconds_since(t0);
  return {mode, static_cast<double>(msgs.size()) / dt,
          static_cast<double>(bytes) / static_cast<double>(msgs.size())};
}

template <typename Msg, typename DecodeBatch>
Row run_batched(const char* mode, const std::vector<Msg>& msgs,
                wq::WireVersion version, DecodeBatch decode_batch) {
  // Partition outside the timed region: the master drains its ready queue
  // into per-worker vectors anyway, so batch assembly is not wire cost.
  std::vector<std::vector<Msg>> batches;
  for (size_t start = 0; start < msgs.size(); start += kBatch) {
    const size_t end = std::min(msgs.size(), start + kBatch);
    batches.emplace_back(msgs.begin() + static_cast<long>(start),
                         msgs.begin() + static_cast<long>(end));
  }
  size_t bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& batch : batches) {
    const std::string wire = wq::encode_batch(batch, version);
    bytes += wire.size();
    (void)decode_batch(wire);
  }
  const double dt = seconds_since(t0);
  return {mode, static_cast<double>(msgs.size()) / dt,
          static_cast<double>(bytes) / static_cast<double>(msgs.size())};
}

void print_row(const Row& row) {
  std::printf("%-24s %14.0f %14.1f\n", row.mode.c_str(), row.msgs_per_sec,
              row.bytes_per_msg);
}

void write_json(const char* path, size_t count, const std::vector<Row>& rows,
                double speedup, double reduction) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "scale_wire: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"scale_wire\",\n");
  std::fprintf(f, "  \"messages_per_mode\": %zu,\n", count);
  std::fprintf(f, "  \"batch_size\": %zu,\n", kBatch);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"msgs_per_sec\": %.0f, "
                 "\"bytes_per_msg\": %.1f}%s\n",
                 rows[i].mode.c_str(), rows[i].msgs_per_sec, rows[i].bytes_per_msg,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"result_throughput_speedup_v2_batched_vs_v1\": %.2f,\n",
               speedup);
  std::fprintf(f, "  \"result_wire_bytes_reduction_v2_vs_v1\": %.4f\n", reduction);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  size_t count = 20000;
  const char* json_path = nullptr;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      count = static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
    }
  }
  if (count == 0) count = 20000;

  const std::vector<wq::TaskMessage> tasks = make_tasks(count);
  const std::vector<wq::ResultMessage> results = make_results(count);

  const auto decode_task = [](const std::string& w) { return wq::decode_task(w); };
  const auto decode_result = [](const std::string& w) {
    return wq::decode_result(w);
  };
  const auto decode_task_batch = [](const std::string& w) {
    return wq::decode_task_batch(w);
  };
  const auto decode_result_batch = [](const std::string& w) {
    return wq::decode_result_batch(w);
  };

  std::vector<Row> rows;
  rows.push_back(run_single("task/v1", tasks, wq::WireVersion::kV1, decode_task));
  rows.push_back(run_single("task/v2", tasks, wq::WireVersion::kV2, decode_task));
  rows.push_back(run_batched("task/v2+batch", tasks, wq::WireVersion::kV2,
                             decode_task_batch));
  rows.push_back(
      run_single("result/v1", results, wq::WireVersion::kV1, decode_result));
  rows.push_back(
      run_single("result/v2", results, wq::WireVersion::kV2, decode_result));
  rows.push_back(run_batched("result/v2+batch", results, wq::WireVersion::kV2,
                             decode_result_batch));

  std::printf("wire protocol round-trip throughput (%zu messages per mode, "
              "batch=%zu)\n",
              count, kBatch);
  std::printf("%-24s %14s %14s\n", "mode", "msgs/sec", "bytes/msg");
  for (const auto& row : rows) print_row(row);

  const Row& v1_result = rows[3];
  const Row& v2_batched_result = rows[5];
  const double speedup = v2_batched_result.msgs_per_sec / v1_result.msgs_per_sec;
  const double reduction = 1.0 - v2_batched_result.bytes_per_msg / v1_result.bytes_per_msg;
  std::printf("\nresult messages, v2+batch vs v1: %.1fx throughput, %.1f%% "
              "fewer wire bytes\n",
              speedup, reduction * 100.0);

  if (json_path) write_json(json_path, count, rows, speedup, reduction);

  if (check) {
    if (speedup < 5.0) {
      std::fprintf(stderr, "FAIL: throughput speedup %.2fx < 5x\n", speedup);
      return 1;
    }
    if (reduction < 0.25) {
      std::fprintf(stderr, "FAIL: wire-bytes reduction %.1f%% < 25%%\n",
                   reduction * 100.0);
      return 1;
    }
    std::printf("check passed: >=5x throughput, >=25%% bytes reduction\n");
  }
  return 0;
}
