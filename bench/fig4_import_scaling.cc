// Figure 4: average time to import Python modules on Theta while scaling
// from 64 to 32,768 cores (1 to 512 nodes), one import per core, loading
// directly from the shared filesystem.
//
// Modelling notes: the interpreter itself comes from the site-optimized
// install and is the common baseline of every row; each module's cost is
// its OWN files (cold lookups + reads). The 64 processes of a node share
// the Lustre client cache, so the contention unit at the metadata server is
// the node.
//
// Paper shape: near-constant time for python / numpy / matplotlib;
// TensorFlow import time grows sharply with node count (metadata-server
// collapse under concurrent load).
#include "bench_common.h"
#include "pkg/index.h"
#include "sim/envdist.h"

namespace {

using namespace lfm;

void print_table() {
  lfm::bench::print_header(
      "Figure 4: import time vs core count on Theta (shared FS direct)",
      "Figure 4 of the paper");
  const pkg::PackageIndex& index = pkg::standard_index();
  const sim::Site site = sim::theta();
  const sim::EnvDistModel model(site);

  // Per-module metas: the module's own files/bytes. "python" is the bare
  // interpreter from the site install (conda cold start); "numpy+matplotlib"
  // is the sum of both packages.
  const auto* numpy = index.best("numpy", pkg::VersionSpec::any());
  const auto* matplotlib = index.best("matplotlib", pkg::VersionSpec::any());
  const auto* tensorflow = index.best("tensorflow", pkg::VersionSpec::any());
  if (numpy == nullptr || matplotlib == nullptr || tensorflow == nullptr) {
    throw Error("fig4: standard index missing expected packages");
  }
  pkg::PackageMeta combined;
  combined.name = "numpy+matplotlib";
  combined.file_count = numpy->file_count + matplotlib->file_count;
  combined.size_bytes = numpy->size_bytes + matplotlib->size_bytes;

  const std::vector<const pkg::PackageMeta*> modules = {numpy, matplotlib,
                                                        &combined, tensorflow};

  std::printf("%-8s %-8s %16s", "cores", "nodes", "python");
  for (const auto* m : modules) std::printf(" %16s", m->name.c_str());
  std::printf("\n");
  for (int nodes = 1; nodes <= 512; nodes *= 2) {
    const int cores = nodes * site.node.cores;
    const double python_baseline = sim::conda_runtime().cold_start_seconds();
    std::printf("%-8d %-8d %16.2f", cores, nodes, python_baseline);
    for (const auto* m : modules) {
      std::printf(" %16.2f", python_baseline + model.module_import_seconds(*m, nodes));
    }
    std::printf("\n");
  }
  std::printf("(seconds per import; paper shape: python/numpy/matplotlib flat-ish,\n"
              " tensorflow grows steeply with scale)\n");
}

void BM_import_model_512_nodes(benchmark::State& state) {
  const pkg::PackageIndex& index = pkg::standard_index();
  const sim::EnvDistModel model(sim::theta());
  const auto* tensorflow = index.best("tensorflow", pkg::VersionSpec::any());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.module_import_seconds(*tensorflow, 512));
  }
}
BENCHMARK(BM_import_model_512_nodes);

}  // namespace

LFM_BENCH_MAIN(print_table)
