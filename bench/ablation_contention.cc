// Ablation: the metadata-contention exponent (DESIGN.md §6).
//
// The Fig 4/5 conclusions rest on the shared filesystem's super-linear
// response to concurrent metadata load. This ablation sweeps the exponent
// (1.0 = perfectly fair server, no collapse) and reports where the
// packed-transfer advantage comes from: even at exponent 1.0 packing wins
// (fewer ops), but the ratio explodes as the collapse sharpens.
#include "bench_common.h"
#include "pkg/index.h"
#include "pkg/solver.h"
#include "sim/envdist.h"

namespace {

using namespace lfm;

void print_table() {
  lfm::bench::print_header("Ablation: metadata-server contention exponent",
                           "DESIGN.md ablation (mechanism behind Figs 4-5)");
  const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  auto res = solver.resolve({pkg::Requirement::parse("tensorflow")});
  if (!res.ok()) throw Error(res.error());
  const pkg::Environment env("tensorflow", std::move(res).take());

  std::printf("%-10s %14s %14s %12s\n", "exponent", "direct@256 (s)",
              "packed@256 (s)", "direct/packed");
  for (const double exponent : {1.0, 1.3, 1.6, 1.9}) {
    sim::Site site = sim::theta();
    site.shared_fs.contention_exponent = exponent;
    const sim::EnvDistModel model(site);
    const double direct =
        model.setup_seconds(env, sim::DistributionMethod::kSharedFsDirect, 256);
    const double packed =
        model.setup_seconds(env, sim::DistributionMethod::kPackedTransfer, 256);
    std::printf("%-10.1f %14.1f %14.1f %12.1fx\n", exponent, direct, packed,
                direct / packed);
  }
  std::printf("\n(expected: packing wins at every exponent — it issues ~3 orders\n"
              " of magnitude fewer metadata ops — and the margin grows sharply\n"
              " with the collapse exponent)\n");
}

void BM_direct_model(benchmark::State& state) {
  const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  const pkg::Environment env(
      "tensorflow", solver.resolve({pkg::Requirement::parse("tensorflow")}).take());
  const sim::EnvDistModel model(sim::theta());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.setup_seconds(env, sim::DistributionMethod::kSharedFsDirect, 256));
  }
}
BENCHMARK(BM_direct_model);

}  // namespace

LFM_BENCH_MAIN(print_table)
