// Scheduler scaling sweep: dispatch throughput of the WQ master as the pool
// and the backlog grow (workers x tasks, up to 1,000 x 100,000).
//
// Unlike the fig* binaries this does not reproduce a paper figure; it
// measures the master itself. Each row runs one Auto-strategy scenario on a
// synthetic multi-category workload (per-category packed environments, so
// the cache-affinity path is exercised) and reports wall-clock time, engine
// event throughput, and task throughput next to the simulated makespan.
//
// Usage:
//   scale_master                 # default sweep up to 1000 workers x 100k tasks
//   scale_master W T [W T ...]   # explicit (workers, tasks) rows (CI smoke)
//   scale_master --seed N W T [W T ...]
//       generate the synthetic workload from seed N (default 42); the seed
//       is echoed in the output header so any run can be reproduced
//   scale_master --trace PATH W T [W T ...]
//       additionally record the obs trace and write Chrome trace_event JSON
//       to PATH (virtual-clock timestamps; the file holds the LAST row, so
//       per-task span stacks are not interleaved across rows)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "alloc/labeler.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "sim/network.h"
#include "util/rng.h"
#include "wq/master.h"

namespace {

using namespace lfm;

constexpr int kCategories = 8;

alloc::Resources worker_capacity() { return alloc::Resources{16.0, 64e9, 128e9}; }

alloc::LabelerConfig labeler_config() {
  alloc::LabelerConfig cfg;
  cfg.strategy = alloc::Strategy::kAuto;
  cfg.whole_node = worker_capacity();
  cfg.guess = alloc::Resources{1.0, 2e9, 4e9};
  cfg.warmup_samples = 3;
  return cfg;
}

std::vector<wq::TaskSpec> make_tasks(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<wq::TaskSpec> tasks;
  tasks.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int cat = i % kCategories;
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    t.category = "cat-" + std::to_string(cat);
    t.exec_seconds = rng.uniform(20.0, 80.0);
    t.true_cores = 1.0;
    const double base_mem = (0.5 + 0.25 * cat) * 1e9;
    t.true_peak = alloc::Resources{1.0, rng.uniform(0.8, 1.2) * base_mem,
                                   rng.uniform(1e9, 2e9)};
    wq::InputFile env;
    env.name = "env-" + std::to_string(cat) + ".tar.gz";
    env.size_bytes = 300LL * 1000 * 1000;
    env.cacheable = true;
    env.unpack_seconds = 0.5;
    t.inputs.push_back(std::move(env));
    tasks.push_back(std::move(t));
  }
  return tasks;
}

void run_row(int workers, int tasks, uint64_t seed) {
  sim::Simulation sim;
  if (obs::Recorder::enabled()) {
    // One trace per row: fold every domain onto the virtual clock and start
    // from an empty buffer so span stacks never interleave across rows.
    obs::Recorder::global().clear();
    obs::Recorder::global().set_clock([&sim] { return sim.now(); });
  }
  sim::NetworkParams np;
  np.bandwidth = 12.5e9;  // 100 GbE master uplink
  np.per_flow_bandwidth = 1.25e9;
  sim::Network network(sim, np);
  alloc::Labeler labeler(labeler_config());
  wq::Master master(sim, network, labeler);
  for (int w = 0; w < workers; ++w) master.add_worker({worker_capacity(), 0.0});
  for (auto& t : make_tasks(tasks, seed)) master.submit(std::move(t));

  const auto start = std::chrono::steady_clock::now();
  const wq::MasterStats stats = master.run();
  const auto end = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();
  const double events = static_cast<double>(sim.executed_events());
  std::printf("%8d %8d %10.2f %12lld %12.0f %10.0f %12.1f %8lld %10lld\n", workers,
              tasks, wall, static_cast<long long>(sim.executed_events()),
              events / wall, static_cast<double>(stats.tasks_completed) / wall,
              stats.makespan, static_cast<long long>(stats.exhaustion_retries),
              static_cast<long long>(stats.cache_hits));
  std::fflush(stdout);
  // The clock lambda captures the row-local simulation; detach it before
  // the simulation is destroyed.
  if (obs::Recorder::enabled()) obs::Recorder::global().set_clock(nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  uint64_t seed = 42;
  int first_row_arg = 1;
  while (first_row_arg + 1 < argc) {
    const std::string arg = argv[first_row_arg];
    if (arg == "--trace") {
      trace_path = argv[first_row_arg + 1];
      first_row_arg += 2;
      obs::Recorder::global().set_enabled(true);
    } else if (arg == "--seed") {
      seed = std::strtoull(argv[first_row_arg + 1], nullptr, 10);
      first_row_arg += 2;
    } else {
      break;
    }
  }
  std::vector<std::pair<int, int>> rows;
  if (argc > first_row_arg) {
    if ((argc - first_row_arg) % 2 != 0) {
      std::fprintf(stderr,
                   "usage: %s [--trace PATH] [--seed N] [workers tasks]...\n",
                   argv[0]);
      return 1;
    }
    for (int i = first_row_arg; i + 1 < argc; i += 2) {
      char* end = nullptr;
      const long w = std::strtol(argv[i], &end, 10);
      const bool w_ok = end && *end == '\0' && w > 0;
      const long t = std::strtol(argv[i + 1], &end, 10);
      const bool t_ok = end && *end == '\0' && t > 0;
      if (!w_ok || !t_ok) {
        std::fprintf(stderr, "%s: '%s %s' is not a positive workers/tasks pair\n",
                     argv[0], argv[i], argv[i + 1]);
        return 1;
      }
      rows.emplace_back(static_cast<int>(w), static_cast<int>(t));
    }
  } else {
    rows = {{25, 2500}, {100, 10000}, {250, 25000}, {500, 50000}, {1000, 100000}};
  }
  std::printf(
      "Scheduler scaling sweep (Auto strategy, %d task categories, seed %llu)\n",
      kCategories, static_cast<unsigned long long>(seed));
  std::printf("%8s %8s %10s %12s %12s %10s %12s %8s %10s\n", "workers", "tasks",
              "wall(s)", "events", "events/s", "tasks/s", "makespan", "retries",
              "hits");
  for (const auto& [w, t] : rows) run_row(w, t, seed);
  if (!trace_path.empty()) {
    const auto slash = trace_path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : trace_path.substr(0, slash);
    const std::string file =
        slash == std::string::npos ? trace_path : trace_path.substr(slash + 1);
    const obs::Recorder& r = obs::Recorder::global();
    obs::write_text_file(dir, file, obs::chrome_trace_json(r.events()));
    std::printf("wrote %zu trace events to %s\n", r.event_count(), trace_path.c_str());
  }
  return 0;
}
