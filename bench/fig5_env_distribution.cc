// Figure 5: cumulative time to load the TensorFlow environment across an
// increasing number of nodes, comparing direct shared-filesystem access
// against transferring the conda-pack archive and unpacking to node-local
// storage, on Theta, Cori, and ND-CRC.
//
// Paper shape: both methods degrade as nodes increase, but packed transfer +
// local unpack significantly outperforms direct access at every site; the
// gap widens with scale. Cumulative time reaches many node-hours.
#include "bench_common.h"
#include "pkg/index.h"
#include "pkg/solver.h"
#include "sim/envdist.h"

namespace {

using namespace lfm;

void print_table() {
  lfm::bench::print_header(
      "Figure 5: TensorFlow environment load, direct vs packed+local unpack",
      "Figure 5 of the paper");
  const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  auto result = solver.resolve({pkg::Requirement::parse("tensorflow")});
  if (!result.ok()) throw Error("fig5: " + result.error());
  const pkg::Environment env("tensorflow", std::move(result).take());

  for (const sim::Site& site : {sim::theta(), sim::cori(), sim::nd_crc()}) {
    const sim::EnvDistModel model(site);
    std::printf("\n-- %s --\n", site.name.c_str());
    std::printf("%-8s %18s %18s %20s %20s\n", "nodes", "direct/node (s)",
                "packed/node (s)", "direct cumul (h)", "packed cumul (h)");
    for (int nodes = 1; nodes <= 512; nodes *= 4) {
      const double direct = model.setup_seconds(
          env, sim::DistributionMethod::kSharedFsDirect, nodes);
      const double packed = model.setup_seconds(
          env, sim::DistributionMethod::kPackedTransfer, nodes);
      std::printf("%-8d %18.1f %18.1f %20.2f %20.2f\n", nodes, direct, packed,
                  direct * nodes / 3600.0, packed * nodes / 3600.0);
    }
  }
  std::printf(
      "\n(paper shape: both methods grow with node count; packed transfer +\n"
      " local unpack wins at every site, increasingly so at scale)\n");
}

void BM_setup_model(benchmark::State& state) {
  const pkg::PackageIndex& index = pkg::standard_index();
  pkg::Solver solver(index);
  const pkg::Environment env("tensorflow",
                             solver.resolve({pkg::Requirement::parse("tensorflow")}).take());
  const sim::EnvDistModel model(sim::theta());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.setup_seconds(
        env, sim::DistributionMethod::kPackedTransfer, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_setup_model)->Arg(16)->Arg(256);

}  // namespace

LFM_BENCH_MAIN(print_table)
