// Ablation: LFM polling interval — REAL measurements on this host.
//
// The paper's monitor combines polling with event interception because
// "polling by itself is sufficient for tasks that run for more than a
// handful of seconds". This ablation runs a real memory-ramp task under the
// actual monitor at several polling intervals and reports (a) how accurately
// the peak RSS is captured and (b) the monitoring overhead, quantifying the
// accuracy/overhead trade-off that motivates the hybrid design.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "monitor/lfm.h"
#include "util/units.h"

namespace {

using namespace lfm;
using serde::Value;

// The paper's hard case: the task itself is modest (~16 MiB), but it forks a
// short-lived child that balloons to ~80 MiB for ~30 ms and exits. Fine
// polling catches the child's RSS; coarse polling misses it entirely —
// exactly why §VI.B.1 adds fork/exit event tracking to pure polling.
Value ramp_task(const Value&) {
  std::vector<std::string> hoard;
  for (int i = 0; i < 4; ++i) {
    hoard.emplace_back(4 << 20, 'x');
    for (size_t j = 0; j < hoard.back().size(); j += 4096) hoard.back()[j] = 'y';
  }
  const pid_t child = ::fork();
  if (child == 0) {
    std::vector<std::string> balloon;
    for (int i = 0; i < 20; ++i) {
      balloon.emplace_back(4 << 20, 'z');
      for (size_t j = 0; j < balloon.back().size(); j += 4096) balloon.back()[j] = 'w';
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ::_exit(0);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  return Value(1);
}

void print_table() {
  lfm::bench::print_header("Ablation: monitor polling interval (REAL measurements)",
                           "DESIGN.md ablation (motivates §VI.B.1's hybrid design)");
  std::printf("%-14s %12s %12s %12s %10s\n", "interval (ms)", "peak RSS", "samples",
              "wall (s)", "peak err");

  // Reference: the finest polling defines "truth" for the peak.
  int64_t reference_peak = 0;
  for (const double interval : {0.002, 0.01, 0.05, 0.2}) {
    monitor::MonitorOptions options;
    options.poll_interval = interval;
    options.record_timeline = true;
    const auto outcome = monitor::run_monitored(ramp_task, Value(), options);
    if (reference_peak == 0) reference_peak = outcome.usage.max_rss_bytes;
    const double err =
        1.0 - static_cast<double>(outcome.usage.max_rss_bytes) /
                  static_cast<double>(reference_peak);
    std::printf("%-14.0f %12s %12zu %12.2f %9.1f%%\n", interval * 1e3,
                format_bytes(outcome.usage.max_rss_bytes).c_str(),
                outcome.timeline.size(), outcome.usage.wall_time, err * 100.0);
  }
  std::printf("\n(expected: coarser polling sees fewer samples and can understate\n"
              " a transient peak — the error the LD_PRELOAD/event path closes)\n");
}

void BM_monitored_noop(benchmark::State& state) {
  // Overhead of a whole monitored invocation for a trivial task.
  monitor::MonitorOptions options;
  options.poll_interval = 0.005;
  for (auto _ : state) {
    const auto outcome =
        monitor::run_monitored([](const Value&) { return Value(1); }, Value(), options);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_monitored_noop)->Unit(benchmark::kMillisecond);

}  // namespace

LFM_BENCH_MAIN(print_table)
