// Real-transport throughput: the src/net/ TCP runtime on loopback, a live
// MasterService dispatching to forked WorkerClient processes.
//
// Two phases:
//
//   1. Echo loopback — workers answer every dispatch immediately with a
//      ~1 KB canned payload (no LFM fork), so the rows measure the wire:
//      sockets + event loop + codec. Three modes mirror BENCH_wire.json's
//      in-process codec rows: v1 text frames, v2 single frames, v2 batch
//      frames. The interesting delta against scale_wire is how much of the
//      11x codec speedup survives real syscalls.
//
//   2. End-to-end LFM — >= 1k Python tasks dispatched over TCP to 4 worker
//      processes executing through forked monitor::LFM children, with ONE
//      injected connection drop mid-run. The same tasks also run through an
//      in-process LocalWorker first; the bench verifies the payloads coming
//      back over the network are bit-identical and that every task
//      completed exactly once despite the drop (requeue + reconnect).
//
// Usage:
//   scale_net                          # 20000 echo tasks/mode, 1000 e2e tasks
//   scale_net N                        # echo task count
//   scale_net --e2e M                  # e2e task count
//   scale_net --json BENCH_net.json --check
//   scale_net --http PORT              # live /metrics /healthz /statusz on
//                                      # the e2e master (0 = ephemeral); the
//                                      # bound port prints only after a
//                                      # successful bind, and a bind failure
//                                      # exits nonzero immediately
//   scale_net --http-linger SECONDS    # keep serving that long after the
//                                      # e2e tasks complete (for scrapers)
//
// --check exits nonzero unless v2+batch loopback throughput >= 3x v1 on
// this same run and the e2e phase preserved exactly-once bit-identical
// results across the drop.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "net/event_loop.h"
#include "net/master_service.h"
#include "net/socket.h"
#include "net/worker_client.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "serde/pickle.h"
#include "util/error.h"
#include "wq/protocol.h"
#include "wq/worker.h"

namespace {

using namespace lfm;

constexpr int kWorkers = 4;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Same shape as scale_wire's canned result: a pickled dict of scalars plus a
// bytes blob, ~1 KB — what a funcX-style Python task returns.
serde::Bytes make_payload() {
  std::mt19937_64 rng(0xBEEF);
  serde::ValueDict d;
  serde::ValueList samples;
  for (size_t i = 0; i < 64; ++i) {
    samples.push_back(serde::Value(static_cast<double>(rng() % 100000) / 100.0));
  }
  d["samples"] = serde::Value(std::move(samples));
  serde::Bytes blob(512);
  for (auto& b : blob) b = static_cast<uint8_t>(rng());
  d["blob"] = serde::Value(std::move(blob));
  d["status"] = serde::Value(std::string("ok"));
  d["n"] = serde::Value(int64_t{64});
  return serde::dumps(serde::Value(std::move(d)));
}

pid_t fork_echo_worker(uint16_t port, int index, wq::WireVersion version,
                       const serde::Bytes& payload) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Drop the master's inherited fds: a surviving copy of its listener would
  // keep the port accepting after the run drains, and a worker idle-cycling
  // at exactly that moment reconnects into a backlog nobody serves.
  net::close_inherited_fds();
  int status = 1;
  try {
    net::WorkerClientOptions options;
    options.port = port;
    options.name = "echo-" + std::to_string(index);
    options.wire_version = version;
    options.echo_results = true;
    options.echo_payload = payload;
    net::WorkerClient client(options);
    client.run();
    status = 0;
  } catch (...) {
  }
  _exit(status);
}

pid_t fork_lfm_worker(uint16_t port, int index) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  net::close_inherited_fds();
  int status = 1;
  try {
    net::WorkerClientOptions options;
    options.port = port;
    options.name = "lfm-" + std::to_string(index);
    options.worker.poll_interval = 0.005;
    net::WorkerClient client(options);
    client.run();
    status = 0;
  } catch (...) {
  }
  _exit(status);
}

void reap(std::vector<pid_t>& pids, const char* phase) {
  for (const pid_t pid : pids) {
    int status = -1;
    if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "scale_net: %s worker %d exited abnormally\n", phase,
                   pid);
      std::exit(1);
    }
  }
  pids.clear();
}

struct Row {
  std::string mode;
  double tasks_per_sec = 0.0;
  double bytes_per_task = 0.0;  // both directions, at the master
};

Row run_echo_mode(const char* mode, size_t n, wq::WireVersion version,
                  size_t max_batch, const serde::Bytes& payload) {
  net::EventLoop loop;
  net::MasterServiceConfig config;
  config.tasks_per_worker = 64;
  config.max_batch = max_batch;
  net::MasterService master(loop, config);
  for (size_t i = 0; i < n; ++i) {
    wq::TaskMessage t;
    t.task_id = i + 1;
    t.category = "echo";
    t.command_line = "echo";  // never executed: workers run in echo mode
    t.allocation = alloc::Resources{1.0, 512e6, 1e9};
    master.submit(std::move(t));
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pid_t> pids;
  for (int w = 0; w < kWorkers; ++w) {
    pids.push_back(fork_echo_worker(master.port(), w, version, payload));
  }
  const net::NetMasterStats stats = master.run_until_complete(600.0);
  const double dt = seconds_since(t0);
  reap(pids, mode);
  if (stats.tasks_completed != static_cast<int64_t>(n)) {
    std::fprintf(stderr, "scale_net: %s completed %lld of %zu tasks\n", mode,
                 static_cast<long long>(stats.tasks_completed), n);
    std::exit(1);
  }
  return {mode, static_cast<double>(n) / dt,
          static_cast<double>(stats.bytes_sent + stats.bytes_received) /
              static_cast<double>(n)};
}

struct E2eResult {
  size_t tasks = 0;
  double direct_wall_seconds = 0.0;
  double net_wall_seconds = 0.0;
  net::NetMasterStats stats;
  bool dropped = false;
  bool bit_identical = false;
  bool exactly_once = false;
};

struct HttpOptions {
  bool enabled = false;
  uint16_t port = 0;
  double linger = 0.0;  // serve this long after the run completes
};

E2eResult run_e2e(size_t n, const HttpOptions& http_opts) {
  const char* module = R"(
def mix(a, b):
    return {'sum': a + b, 'prod': a * b}
)";
  std::vector<std::pair<wq::TaskMessage, wq::FileSet>> specs;
  specs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    serde::ValueList args;
    args.push_back(serde::Value(static_cast<int64_t>(i)));
    args.push_back(serde::Value(static_cast<int64_t>(7919 + i)));
    specs.push_back(wq::make_python_task(1000 + i, "mix", module, "mix",
                                         serde::Value(std::move(args)),
                                         alloc::Resources{1.0, 512e6, 1e9}));
  }

  E2eResult r;
  r.tasks = n;

  // In-process reference: the same messages through LocalWorker directly —
  // the bit-identity baseline and the "no transport" wall-clock anchor.
  std::vector<serde::Bytes> expected(n);
  {
    wq::LocalWorkerOptions wo;
    wo.poll_interval = 0.005;
    wq::LocalWorker direct(wo);
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) {
      const wq::ResultMessage res = direct.execute(specs[i].first, specs[i].second);
      if (res.exit_code != 0) {
        std::fprintf(stderr, "scale_net: direct task %zu failed\n", i);
        std::exit(1);
      }
      expected[i] = res.payload;
    }
    r.direct_wall_seconds = seconds_since(t0);
  }

  net::EventLoop loop;
  // With live endpoints requested the master records its counters into this
  // always-on registry, so /metrics has content without enabling tracing.
  obs::Metrics metrics;
  net::MasterServiceConfig mc;
  if (http_opts.enabled) mc.metrics = &metrics;
  net::MasterService master(loop, mc);
  std::unique_ptr<obs::HttpEndpoint> http;
  if (http_opts.enabled) {
    obs::HttpEndpointConfig hc;
    hc.port = http_opts.port;
    hc.metrics = &metrics;
    hc.statusz = [&master] { return master.statusz_value(); };
    try {
      http = std::make_unique<obs::HttpEndpoint>(loop, hc);
    } catch (const Error& e) {
      std::fprintf(stderr, "scale_net: http bind failed on port %u: %s\n",
                   http_opts.port, e.what());
      std::exit(1);
    }
    // Printed only after the successful bind: anything scripting against
    // this line can start curling the moment it appears.
    std::printf("scale_net: http endpoint listening on 127.0.0.1:%u\n",
                http->port());
    std::fflush(stdout);
  }
  for (auto& [task, files] : specs) master.submit(task, files);

  std::map<uint64_t, int> seen;
  int results_so_far = 0;
  master.set_on_result([&](const wq::ResultMessage& msg) {
    seen[msg.task_id] += 1;
    // One injected fault mid-run: sever a live worker connection. Deferred
    // via post so it lands after the post-result dispatch refill — the
    // severed connection then has a batch in flight to requeue, and the
    // worker reconnects with backoff.
    if (++results_so_far == static_cast<int>(n / 20) + 1) {
      loop.post([&] { r.dropped = master.drop_connection(0); });
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pid_t> pids;
  for (int w = 0; w < kWorkers; ++w) {
    pids.push_back(fork_lfm_worker(master.port(), w));
  }
  r.stats = master.run_until_complete(600.0);
  r.net_wall_seconds = seconds_since(t0);
  reap(pids, "e2e");
  if (http && http_opts.linger > 0) {
    // Hold the endpoint open past completion so an external scraper has a
    // stable window to hit /metrics and /statusz.
    loop.run_after(http_opts.linger, [&loop] { loop.stop(); });
    loop.run();
    std::printf("scale_net: http served %lld request(s)\n",
                static_cast<long long>(http->requests_served()));
  }

  r.exactly_once = seen.size() == n;
  for (const auto& [id, count] : seen) {
    if (count != 1) r.exactly_once = false;
  }
  r.bit_identical = master.results().size() == n;
  for (size_t i = 0; i < n && r.bit_identical; ++i) {
    const wq::ResultMessage& res = master.results()[i];
    if (res.exit_code != 0 || res.payload != expected[i]) r.bit_identical = false;
  }
  return r;
}

void write_json(const char* path, size_t echo_count,
                const std::vector<Row>& rows, double speedup,
                const E2eResult& e2e) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "scale_net: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"scale_net\",\n");
  std::fprintf(f, "  \"workers\": %d,\n", kWorkers);
  std::fprintf(f, "  \"echo_tasks_per_mode\": %zu,\n", echo_count);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"tasks_per_sec\": %.0f, "
                 "\"bytes_per_task\": %.1f}%s\n",
                 rows[i].mode.c_str(), rows[i].tasks_per_sec,
                 rows[i].bytes_per_task, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"loopback_speedup_v2_batched_vs_v1\": %.2f,\n", speedup);
  std::fprintf(f, "  \"e2e\": {\n");
  std::fprintf(f, "    \"tasks\": %zu,\n", e2e.tasks);
  std::fprintf(f, "    \"workers\": %d,\n", kWorkers);
  std::fprintf(f, "    \"injected_connection_drops\": %d,\n", e2e.dropped ? 1 : 0);
  std::fprintf(f, "    \"completed\": %lld,\n",
               static_cast<long long>(e2e.stats.tasks_completed));
  std::fprintf(f, "    \"requeued_tasks\": %lld,\n",
               static_cast<long long>(e2e.stats.requeued_tasks));
  std::fprintf(f, "    \"duplicate_results\": %lld,\n",
               static_cast<long long>(e2e.stats.duplicate_results));
  std::fprintf(f, "    \"connections_accepted\": %lld,\n",
               static_cast<long long>(e2e.stats.connections_accepted));
  std::fprintf(f, "    \"exactly_once\": %s,\n",
               e2e.exactly_once ? "true" : "false");
  std::fprintf(f, "    \"bit_identical_to_in_process\": %s,\n",
               e2e.bit_identical ? "true" : "false");
  std::fprintf(f, "    \"direct_wall_seconds\": %.3f,\n", e2e.direct_wall_seconds);
  std::fprintf(f, "    \"net_wall_seconds\": %.3f\n", e2e.net_wall_seconds);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  size_t echo_count = 20000;
  size_t e2e_count = 1000;
  const char* json_path = nullptr;
  bool check = false;
  HttpOptions http_opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--e2e") == 0 && i + 1 < argc) {
      e2e_count = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      http_opts.enabled = true;
      http_opts.port =
          static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--http-linger") == 0 && i + 1 < argc) {
      http_opts.linger = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      echo_count = static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
    }
  }
  if (echo_count == 0) echo_count = 20000;
  if (e2e_count == 0) e2e_count = 1000;

  const serde::Bytes payload = make_payload();
  std::vector<Row> rows;
  rows.push_back(
      run_echo_mode("result/v1", echo_count, wq::WireVersion::kV1, 64, payload));
  rows.push_back(
      run_echo_mode("result/v2", echo_count, wq::WireVersion::kV2, 1, payload));
  rows.push_back(run_echo_mode("result/v2+batch", echo_count,
                               wq::WireVersion::kV2, 64, payload));

  std::printf("loopback transport throughput (%zu echo tasks per mode, %d "
              "worker processes)\n",
              echo_count, kWorkers);
  std::printf("%-20s %14s %14s\n", "mode", "tasks/sec", "bytes/task");
  for (const Row& row : rows) {
    std::printf("%-20s %14.0f %14.1f\n", row.mode.c_str(), row.tasks_per_sec,
                row.bytes_per_task);
  }
  const double speedup = rows[2].tasks_per_sec / rows[0].tasks_per_sec;
  std::printf("v2+batch vs v1 loopback speedup: %.2fx\n\n", speedup);

  const E2eResult e2e = run_e2e(e2e_count, http_opts);
  std::printf("end-to-end LFM over TCP: %zu tasks, %d workers, %s\n", e2e.tasks,
              kWorkers, e2e.dropped ? "1 injected drop" : "no drop injected");
  std::printf("  completed=%lld requeued=%lld duplicates=%lld accepts=%lld\n",
              static_cast<long long>(e2e.stats.tasks_completed),
              static_cast<long long>(e2e.stats.requeued_tasks),
              static_cast<long long>(e2e.stats.duplicate_results),
              static_cast<long long>(e2e.stats.connections_accepted));
  std::printf("  exactly_once=%s bit_identical=%s\n",
              e2e.exactly_once ? "yes" : "NO",
              e2e.bit_identical ? "yes" : "NO");
  std::printf("  direct %.3fs vs net %.3fs\n", e2e.direct_wall_seconds,
              e2e.net_wall_seconds);

  if (json_path != nullptr) {
    write_json(json_path, echo_count, rows, speedup, e2e);
  }

  if (check) {
    bool ok = true;
    if (speedup < 3.0) {
      std::fprintf(stderr, "CHECK FAILED: v2+batch %.2fx v1 (< 3x)\n", speedup);
      ok = false;
    }
    if (e2e.stats.tasks_completed != static_cast<int64_t>(e2e.tasks)) {
      std::fprintf(stderr, "CHECK FAILED: e2e completed %lld of %zu\n",
                   static_cast<long long>(e2e.stats.tasks_completed), e2e.tasks);
      ok = false;
    }
    if (!e2e.dropped || e2e.stats.connections_accepted < kWorkers + 1) {
      std::fprintf(stderr, "CHECK FAILED: drop/reconnect not exercised "
                           "(dropped=%d accepts=%lld)\n",
                   e2e.dropped ? 1 : 0,
                   static_cast<long long>(e2e.stats.connections_accepted));
      ok = false;
    }
    if (!e2e.exactly_once || !e2e.bit_identical) {
      std::fprintf(stderr, "CHECK FAILED: exactly_once=%d bit_identical=%d\n",
                   e2e.exactly_once ? 1 : 0, e2e.bit_identical ? 1 : 0);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("CHECK PASSED: v2+batch >= 3x v1 on loopback; e2e "
                "exactly-once, bit-identical across 1 drop\n");
  }
  return 0;
}
