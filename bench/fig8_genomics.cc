// Figure 8: GDC genomic analysis pipeline on NSCC Aspire (2x12-core CPUs +
// 96 GB per node, one worker per node), four strategies. Left: varying
// genome count on 14 nodes. Right: 1 genome per worker, scaling 1..16.
//
// Paper shape: Oracle shortest, Auto similar; Guess (12 cores / 40 GB / 5 GB)
// and Unmanaged worse. Auto occasionally BEATS Oracle because VEP's memory
// depends on each genome's variant count, which a per-category "perfect"
// static setting cannot capture.
#include "apps/genomics.h"
#include "bench_common.h"
#include "sim/site.h"

namespace {

using namespace lfm;
using lfm::bench::StrategyRow;

alloc::LabelerConfig nscc_config() {
  const sim::Site site = sim::nscc();
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{static_cast<double>(site.node.cores),
                                    static_cast<double>(site.node.memory_bytes),
                                    static_cast<double>(site.node.disk_bytes)};
  cfg.warmup_samples = 2;
  cfg.guess = apps::genomics::guess_allocation();
  return cfg;
}

std::vector<wq::WorkerSpec> nscc_workers(int count) {
  const sim::Site site = sim::nscc();
  return std::vector<wq::WorkerSpec>(
      static_cast<size_t>(count),
      wq::WorkerSpec{alloc::Resources{static_cast<double>(site.node.cores),
                                      static_cast<double>(site.node.memory_bytes),
                                      static_cast<double>(site.node.disk_bytes)},
                     0.0});
}

void print_table() {
  lfm::bench::print_header("Figure 8: genomic analysis pipeline on NSCC",
                           "Figure 8 of the paper");
  const sim::NetworkParams net = sim::nscc().network;

  std::printf("\n(left) varying genome count on 14 nodes (5 stages per genome)\n");
  lfm::bench::print_strategy_table_header("genomes");
  for (const int genomes : {4, 8, 16, 32}) {
    apps::genomics::Params params;
    params.genomes = genomes;
    const StrategyRow row = lfm::bench::run_all_strategies(
        nscc_config(), nscc_workers(14), apps::genomics::generate(params), net);
    lfm::bench::print_strategy_row(std::to_string(genomes), row);
  }

  std::printf("\n(right) 1 genome per worker, scaling workers\n");
  lfm::bench::print_strategy_table_header("workers");
  for (const int w : {1, 2, 4, 8, 16}) {
    apps::genomics::Params params;
    params.genomes = w;
    const StrategyRow row = lfm::bench::run_all_strategies(
        nscc_config(), nscc_workers(w), apps::genomics::generate(params), net);
    lfm::bench::print_strategy_row(std::to_string(w), row);
  }

  std::printf("\n(paper shape: oracle and auto close; guess/unmanaged worse;\n"
              " auto can edge out oracle on VEP's variant-dependent memory)\n");
}

void BM_genomics_auto(benchmark::State& state) {
  apps::genomics::Params params;
  params.genomes = 14;
  const auto tasks = apps::genomics::generate(params);
  const sim::NetworkParams net = sim::nscc().network;
  for (auto _ : state) {
    const auto result = wq::run_scenario(alloc::Strategy::kAuto, nscc_config(),
                                         nscc_workers(14), tasks, net);
    benchmark::DoNotOptimize(result.stats.makespan);
  }
}
BENCHMARK(BM_genomics_auto);

}  // namespace

LFM_BENCH_MAIN(print_table)
