// Figure 7: drug-screening pipeline on Theta (64-core KNL nodes, one worker
// per node), four strategies. Left: varying total tasks on 14 nodes.
// Right: fixed 4 molecule-batches per worker while scaling workers.
//
// Paper shape: Oracle shortest, Auto close behind, Unmanaged much worse.
// The Guess configuration (16 cores / 40 GB / 5 GB) over-allocates the light
// featurization stages and under-allocates nothing, so it packs only a few
// tasks per node.
#include "apps/drugscreen.h"
#include "bench_common.h"
#include "sim/site.h"

namespace {

using namespace lfm;
using lfm::bench::StrategyRow;

alloc::LabelerConfig theta_config() {
  const sim::Site site = sim::theta();
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{static_cast<double>(site.node.cores),
                                    static_cast<double>(site.node.memory_bytes),
                                    static_cast<double>(site.node.disk_bytes)};
  cfg.warmup_samples = 2;
  cfg.guess = apps::drugscreen::guess_allocation();
  return cfg;
}

std::vector<wq::WorkerSpec> theta_workers(int count) {
  const sim::Site site = sim::theta();
  return std::vector<wq::WorkerSpec>(
      static_cast<size_t>(count),
      wq::WorkerSpec{alloc::Resources{static_cast<double>(site.node.cores),
                                      static_cast<double>(site.node.memory_bytes),
                                      static_cast<double>(site.node.disk_bytes)},
                     0.0});
}

void print_table() {
  lfm::bench::print_header("Figure 7: drug screening pipeline on Theta",
                           "Figure 7 of the paper");
  const sim::NetworkParams net = sim::theta().network;

  std::printf("\n(left) varying molecule batches on 14 nodes (6 tasks per batch)\n");
  lfm::bench::print_strategy_table_header("molecules");
  for (const int molecules : {25, 50, 100, 200}) {
    apps::drugscreen::Params params;
    params.molecules = molecules;
    const StrategyRow row = lfm::bench::run_all_strategies(
        theta_config(), theta_workers(14), apps::drugscreen::generate(params), net);
    lfm::bench::print_strategy_row(std::to_string(molecules), row);
  }

  std::printf("\n(right) 4 molecule batches per worker, scaling workers\n");
  lfm::bench::print_strategy_table_header("workers");
  for (const int w : {2, 4, 8, 16}) {
    apps::drugscreen::Params params;
    params.molecules = 4 * w;  // workload proportional to pool size
    const StrategyRow row = lfm::bench::run_all_strategies(
        theta_config(), theta_workers(w), apps::drugscreen::generate(params), net);
    lfm::bench::print_strategy_row(std::to_string(w), row);
  }

  std::printf("\n(paper shape: oracle shortest, auto close behind, unmanaged much\n"
              " worse; right-hand curves stay nearly flat = good weak scaling)\n");
}

void BM_drug_auto(benchmark::State& state) {
  apps::drugscreen::Params params;
  params.molecules = 50;
  const auto tasks = apps::drugscreen::generate(params);
  const sim::NetworkParams net = sim::theta().network;
  for (auto _ : state) {
    const auto result = wq::run_scenario(alloc::Strategy::kAuto, theta_config(),
                                         theta_workers(14), tasks, net);
    benchmark::DoNotOptimize(result.stats.makespan);
  }
}
BENCHMARK(BM_drug_auto);

}  // namespace

LFM_BENCH_MAIN(print_table)
