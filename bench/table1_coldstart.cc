// Table I: time to run a "Hello World" Python function in a standard
// Python 3 environment, comparing Conda activation against the container
// runtime each site offers (Singularity on Theta, Shifter on Cori, Docker
// on AWS EC2).
//
// Paper-reported shape: Conda is significantly faster than every container
// technology, because activation only changes environment variables while
// containers create namespaces, mount images, and prepare IO controllers.
#include "bench_common.h"
#include "sim/site.h"

namespace {

using namespace lfm;
using namespace lfm::sim;

void print_table() {
  lfm::bench::print_header("Table I: 'Hello World' cold start by environment technology",
                           "Table I of the paper");
  std::printf("%-8s %-14s %10s   %s\n", "site", "runtime", "time (s)", "breakdown");
  for (const Site& site : {theta(), cori(), aws_ec2()}) {
    for (const RuntimeCosts& runtime : site.runtimes) {
      std::printf("%-8s %-14s %10.2f   env=%.2f ns=%.2f mount=%.2f ctl=%.2f py=%.2f\n",
                  site.name.c_str(), runtime.name.c_str(),
                  runtime.cold_start_seconds(), runtime.env_setup_seconds,
                  runtime.namespace_seconds, runtime.image_mount_seconds,
                  runtime.controller_seconds, runtime.interpreter_seconds);
    }
  }
  std::printf("\nShape check (paper: conda << container at every site):\n");
  for (const Site& site : {theta(), cori(), aws_ec2()}) {
    const double conda = site.runtimes[0].cold_start_seconds();
    const double container = site.runtimes[1].cold_start_seconds();
    std::printf("  %-8s conda %.2fs vs %s %.2fs -> %.1fx faster\n", site.name.c_str(),
                conda, site.runtimes[1].name.c_str(), container, container / conda);
  }
}

void BM_cold_start_model(benchmark::State& state) {
  const Site site = theta();
  for (auto _ : state) {
    double total = 0.0;
    for (const RuntimeCosts& runtime : site.runtimes) {
      total += runtime.cold_start_seconds();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_cold_start_model);

}  // namespace

LFM_BENCH_MAIN(print_table)
