// Figure 6: HEP (Coffea) workflow completion time on ND-CRC under the four
// resource-management strategies, varying (a) task count, (b) worker count,
// and (c) worker size (2/4/8 cores, 1 GB memory + 2 GB disk per core).
//
// Paper shape: Oracle shortest; Auto within a few percent with <1% retries;
// Guess (1 core / 1.5 GB / 2 GB) worse where memory-bound packing bites;
// Unmanaged (whole worker per task) several-fold worse.
#include "apps/hep.h"
#include "bench_common.h"
#include "sim/site.h"
#include "util/strings.h"

namespace {

using namespace lfm;
using lfm::bench::StrategyRow;

alloc::LabelerConfig worker_config(int cores) {
  alloc::LabelerConfig cfg;
  cfg.whole_node =
      alloc::Resources{static_cast<double>(cores), cores * 1e9, cores * 2e9};
  cfg.warmup_samples = 2;
  cfg.guess = apps::hep::guess_allocation();
  return cfg;
}

std::vector<wq::WorkerSpec> workers(int count, int cores) {
  return std::vector<wq::WorkerSpec>(
      static_cast<size_t>(count),
      wq::WorkerSpec{alloc::Resources{static_cast<double>(cores), cores * 1e9,
                                      cores * 2e9},
                     0.0});
}

void print_table() {
  lfm::bench::print_header("Figure 6: HEP workflow on ND-CRC, four strategies",
                           "Figure 6 of the paper");
  const sim::NetworkParams net = sim::nd_crc().network;

  std::printf("\n(a) varying task count (20 workers x 8 cores)\n");
  lfm::bench::print_strategy_table_header("tasks");
  for (const int tasks : {50, 100, 200, 400}) {
    apps::hep::Params params;
    params.tasks = tasks;
    const StrategyRow row = lfm::bench::run_all_strategies(
        worker_config(8), workers(20, 8), apps::hep::generate(params), net);
    lfm::bench::print_strategy_row(std::to_string(tasks), row);
  }

  std::printf("\n(b) varying worker count (200 tasks, 8-core workers)\n");
  lfm::bench::print_strategy_table_header("workers");
  apps::hep::Params params200;
  params200.tasks = 200;
  const auto tasks200 = apps::hep::generate(params200);
  for (const int w : {5, 10, 20, 40}) {
    const StrategyRow row = lfm::bench::run_all_strategies(
        worker_config(8), workers(w, 8), tasks200, net);
    lfm::bench::print_strategy_row(std::to_string(w), row);
  }

  std::printf("\n(c) varying worker size (200 tasks, 20 workers)\n");
  lfm::bench::print_strategy_table_header("cores/worker");
  for (const int cores : {2, 4, 8}) {
    const StrategyRow row = lfm::bench::run_all_strategies(
        worker_config(cores), workers(20, cores), tasks200, net);
    lfm::bench::print_strategy_row(std::to_string(cores), row);
  }

  std::printf(
      "\n(paper shape: oracle <= auto << unmanaged; auto retries ~<1%% of tasks;\n"
      " IO-heavy tasks limit the benefit of wider workers)\n");
}

void BM_hep_auto_200(benchmark::State& state) {
  apps::hep::Params params;
  params.tasks = 200;
  const auto tasks = apps::hep::generate(params);
  const sim::NetworkParams net = sim::nd_crc().network;
  for (auto _ : state) {
    const auto result = wq::run_scenario(alloc::Strategy::kAuto, worker_config(8),
                                         workers(20, 8), tasks, net);
    benchmark::DoNotOptimize(result.stats.makespan);
  }
}
BENCHMARK(BM_hep_auto_200);

}  // namespace

LFM_BENCH_MAIN(print_table)
