// Content-addressed environment distribution at scale: N sibling
// environments (a shared scientific base plus one app-specific package each)
// distributed to M workers, and a pack-pipeline wall-time comparison.
//
// Two experiments (DESIGN.md §12, EXPERIMENTS.md "incremental distribution"):
//   1. pack: one 32-package environment packed cold, serial (1 thread) vs
//      the parallel pipeline at 8 threads, byte-identity verified across
//      thread counts {1, 2, 4, 8}.
//   2. dist: a wq::Master campaign where every worker runs one task per
//      environment; with delta distribution off each sibling ships the full
//      archive, with it on only the chunks the worker's chunk cache misses.
//
// Prints both tables and, with --json, writes BENCH_pack.json. With --check,
// exits nonzero unless outputs are byte-identical across thread counts and
// the warm delta ships >= 5x fewer bytes than full archives; the >= 2x
// parallel-pack speedup is asserted only on hosts with >= 4 hardware
// threads (on smaller machines the measured numbers are still recorded).
//
// Usage:
//   scale_pack
//   scale_pack --json BENCH_pack.json --check
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "alloc/labeler.h"
#include "pkg/chunk.h"
#include "pkg/environment.h"
#include "pkg/index.h"
#include "pkg/packer.h"
#include "pkg/solver.h"
#include "sim/envdist.h"
#include "sim/network.h"
#include "sim/site.h"
#include "util/strings.h"
#include "wq/master.h"

namespace {

using namespace lfm;

constexpr int kPackPackages = 32;      // packages in the pack-timing env
constexpr int kPackFilesPerPkg = 30000;
constexpr int kBasePackages = 24;      // shared base of every sibling env
constexpr int kEnvironments = 8;       // N sibling environments
constexpr int kWorkers = 16;           // M workers
constexpr int kParallelThreads = 8;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

pkg::PackageMeta make_pkg(const std::string& name, int files, int64_t bytes) {
  pkg::PackageMeta meta;
  meta.name = name;
  meta.version = pkg::Version::parse("1.0.0");
  meta.file_count = files;
  meta.size_bytes = bytes;
  return meta;
}

pkg::Environment make_env(const pkg::PackageIndex& index,
                          const std::vector<std::string>& names,
                          const std::string& env_name) {
  pkg::Solver solver(index);
  std::vector<pkg::Requirement> reqs;
  reqs.reserve(names.size());
  for (const std::string& n : names) reqs.push_back(pkg::Requirement::parse(n));
  auto result = solver.resolve(reqs);
  if (!result.ok()) {
    std::fprintf(stderr, "scale_pack: resolve failed: %s\n", result.error().c_str());
    std::exit(1);
  }
  return pkg::Environment(env_name, std::move(result).take());
}

// --- experiment 1: serial vs parallel pack ---------------------------------

struct PackResult {
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  int64_t archive_bytes = 0;
  size_t chunk_count = 0;
  bool byte_identical = true;
  double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

PackResult run_pack_experiment() {
  pkg::PackageIndex index;
  std::vector<std::string> names;
  for (int i = 0; i < kPackPackages; ++i) {
    const std::string name = strformat("stress-%02d", i);
    index.add(make_pkg(name, kPackFilesPerPkg, 600000000));
    names.push_back(name);
  }
  const pkg::Environment env = make_env(index, names, "pack-stress");

  PackResult out;
  uint64_t reference_digest = 0;
  pkg::ChunkManifest reference_manifest;
  // Every timing rep packs fully cold: both the signature-dedup cache and
  // the chunk store are cleared, so the parallel path cannot borrow work.
  const auto pack_once = [&](int threads) {
    pkg::clear_pack_cache();
    pkg::global_chunk_store().clear();
    const auto t0 = std::chrono::steady_clock::now();
    const pkg::PackedEnvironment packed = pkg::packed_environment(env, threads);
    const double dt = seconds_since(t0);
    out.archive_bytes = static_cast<int64_t>(packed.tar->size());
    out.chunk_count = packed.manifest->chunk_count();
    if (reference_digest == 0) {
      reference_digest = packed.manifest->stream_digest();
      reference_manifest = *packed.manifest;
    } else if (packed.manifest->stream_digest() != reference_digest ||
               !(*packed.manifest == reference_manifest)) {
      out.byte_identical = false;
    }
    return dt;
  };

  constexpr int kReps = 3;
  double serial = 1e300;
  double parallel = 1e300;
  for (int r = 0; r < kReps; ++r) serial = std::min(serial, pack_once(1));
  for (int r = 0; r < kReps; ++r) {
    parallel = std::min(parallel, pack_once(kParallelThreads));
  }
  // Determinism sweep over the remaining thread counts.
  for (const int threads : {2, 4}) pack_once(threads);
  out.serial_seconds = serial;
  out.parallel_seconds = parallel;
  return out;
}

// --- experiment 2: full-archive vs delta distribution ----------------------

struct DistResult {
  int64_t cold_bytes = 0;        // first environment, every worker cold
  int64_t warm_full_bytes = 0;   // siblings, full-archive transfer
  int64_t warm_delta_bytes = 0;  // siblings, chunk-delta transfer
  int64_t chunk_evictions = 0;
  double model_cold_seconds = 0.0;  // EnvDistModel theta, 64 nodes
  double model_warm_seconds = 0.0;
  double reduction() const {
    return warm_delta_bytes > 0
               ? static_cast<double>(warm_full_bytes) /
                     static_cast<double>(warm_delta_bytes)
               : 0.0;
  }
};

int64_t run_campaign(const std::vector<pkg::PackedEnvironment>& packs,
                     bool delta, int64_t* evictions) {
  sim::Simulation sim;
  sim::Network net(sim, {});
  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{1.0, 8e9, 16e9};
  cfg.guess = alloc::Resources{1.0, 1.5e9, 2e9};
  alloc::Labeler labeler(cfg);
  wq::MasterConfig mc;
  mc.delta_distribution = delta;
  wq::Master master(sim, net, labeler, mc);
  for (int w = 0; w < kWorkers; ++w) {
    master.add_worker({alloc::Resources{1.0, 8e9, 16e9}, 0.0});
  }
  // One task per (environment, worker): single-core workers and equal
  // runtimes make each round dispatch exactly one env task to each worker,
  // so every worker fetches every environment exactly once.
  uint64_t id = 1;
  for (size_t e = 0; e < packs.size(); ++e) {
    for (int w = 0; w < kWorkers; ++w) {
      wq::TaskSpec t;
      t.id = id++;
      t.category = "env-campaign";
      t.exec_seconds = 100.0;
      t.true_cores = 1.0;
      t.true_peak = alloc::Resources{1.0, 100e6, 500e6};
      wq::InputFile f;
      f.name = "env-" + std::to_string(e) + ".tar";
      f.size_bytes = packs[e].manifest->total_bytes();
      f.cacheable = true;
      f.unpack_seconds = 1.0;
      f.manifest = packs[e].manifest;
      t.inputs.push_back(std::move(f));
      master.submit(std::move(t));
    }
  }
  const wq::MasterStats stats = master.run();
  if (evictions) *evictions = stats.chunk_cache_evictions;
  return stats.transferred_bytes;
}

DistResult run_dist_experiment() {
  pkg::PackageIndex index;
  std::vector<std::string> base;
  for (int i = 0; i < kBasePackages; ++i) {
    const std::string name = strformat("numeric-base-%02d", i);
    index.add(make_pkg(name, 2000, 40000000));
    base.push_back(name);
  }
  std::vector<pkg::Environment> envs;
  std::vector<pkg::PackedEnvironment> packs;
  for (int e = 0; e < kEnvironments; ++e) {
    const std::string extra = strformat("app-extra-%02d", e);
    index.add(make_pkg(extra, 2000, 40000000));
    std::vector<std::string> names = base;
    names.push_back(extra);
    envs.push_back(make_env(index, names, strformat("sibling-%02d", e)));
  }
  pkg::clear_pack_cache();
  pkg::global_chunk_store().clear();
  for (const pkg::Environment& env : envs) {
    packs.push_back(pkg::packed_environment(env));
  }

  DistResult out;
  int64_t first_env_bytes = packs[0].manifest->total_bytes();
  out.cold_bytes = first_env_bytes * kWorkers;

  const int64_t full_total = run_campaign(packs, /*delta=*/false, nullptr);
  const int64_t delta_total =
      run_campaign(packs, /*delta=*/true, &out.chunk_evictions);
  out.warm_full_bytes = full_total - out.cold_bytes;
  out.warm_delta_bytes = delta_total - out.cold_bytes;

  // Modeled per-worker setup time on Theta at 64 nodes: cold packed fetch vs
  // a warm sibling fetching only its missing chunk fraction.
  const sim::EnvDistModel model(sim::theta());
  const double warm_fraction =
      static_cast<double>(out.warm_delta_bytes) /
      static_cast<double>(std::max<int64_t>(out.warm_full_bytes, 1));
  out.model_cold_seconds = model.setup_seconds(
      envs[1], sim::DistributionMethod::kPackedTransfer, 64);
  out.model_warm_seconds = model.delta_setup_seconds(envs[1], 64, warm_fraction);
  return out;
}

void write_json(const char* path, const PackResult& pack, const DistResult& dist,
                unsigned hardware_threads) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "scale_pack: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"scale_pack\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hardware_threads);
  std::fprintf(f, "  \"pack\": {\n");
  std::fprintf(f, "    \"packages\": %d,\n", kPackPackages);
  std::fprintf(f, "    \"archive_bytes\": %" PRId64 ",\n", pack.archive_bytes);
  std::fprintf(f, "    \"chunks\": %zu,\n", pack.chunk_count);
  std::fprintf(f, "    \"serial_seconds\": %.4f,\n", pack.serial_seconds);
  std::fprintf(f, "    \"parallel_threads\": %d,\n", kParallelThreads);
  std::fprintf(f, "    \"parallel_seconds\": %.4f,\n", pack.parallel_seconds);
  std::fprintf(f, "    \"speedup\": %.2f,\n", pack.speedup());
  std::fprintf(f, "    \"byte_identical_across_thread_counts\": %s\n",
               pack.byte_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"dist\": {\n");
  std::fprintf(f, "    \"environments\": %d,\n", kEnvironments);
  std::fprintf(f, "    \"workers\": %d,\n", kWorkers);
  std::fprintf(f, "    \"cold_bytes\": %" PRId64 ",\n", dist.cold_bytes);
  std::fprintf(f, "    \"warm_full_bytes\": %" PRId64 ",\n", dist.warm_full_bytes);
  std::fprintf(f, "    \"warm_delta_bytes\": %" PRId64 ",\n", dist.warm_delta_bytes);
  std::fprintf(f, "    \"delta_reduction\": %.2f,\n", dist.reduction());
  std::fprintf(f, "    \"chunk_cache_evictions\": %" PRId64 ",\n",
               dist.chunk_evictions);
  std::fprintf(f, "    \"model_theta_64_nodes_cold_seconds\": %.1f,\n",
               dist.model_cold_seconds);
  std::fprintf(f, "    \"model_theta_64_nodes_warm_seconds\": %.1f\n",
               dist.model_warm_seconds);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    }
  }

  const unsigned hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());

  std::printf("pack pipeline: %d packages x %d files, cold pack\n",
              kPackPackages, kPackFilesPerPkg);
  const PackResult pack = run_pack_experiment();
  std::printf("  archive %.1f MB in %zu chunks\n",
              static_cast<double>(pack.archive_bytes) / 1e6, pack.chunk_count);
  std::printf("  serial (1 thread):      %8.3f s\n", pack.serial_seconds);
  std::printf("  parallel (%d threads):   %8.3f s   (%.2fx, %u hardware threads)\n",
              kParallelThreads, pack.parallel_seconds, pack.speedup(),
              hardware_threads);
  std::printf("  byte-identical across {1,2,4,8} threads: %s\n",
              pack.byte_identical ? "yes" : "NO");

  std::printf("\ndelta distribution: %d sibling environments x %d workers\n",
              kEnvironments, kWorkers);
  const DistResult dist = run_dist_experiment();
  std::printf("  cold bytes (first env, all workers):  %12.1f MB\n",
              static_cast<double>(dist.cold_bytes) / 1e6);
  std::printf("  warm siblings, full archives:         %12.1f MB\n",
              static_cast<double>(dist.warm_full_bytes) / 1e6);
  std::printf("  warm siblings, chunk delta:           %12.1f MB\n",
              static_cast<double>(dist.warm_delta_bytes) / 1e6);
  std::printf("  delta ships %.1fx fewer bytes (%" PRId64 " chunk evictions)\n",
              dist.reduction(), dist.chunk_evictions);
  std::printf("  modeled setup, theta @ 64 nodes: cold %.1f s -> warm %.1f s\n",
              dist.model_cold_seconds, dist.model_warm_seconds);

  if (json_path) write_json(json_path, pack, dist, hardware_threads);

  if (check) {
    if (!pack.byte_identical) {
      std::fprintf(stderr, "FAIL: pack output differs across thread counts\n");
      return 1;
    }
    if (dist.reduction() < 5.0) {
      std::fprintf(stderr, "FAIL: delta reduction %.2fx < 5x\n", dist.reduction());
      return 1;
    }
    if (hardware_threads >= 4) {
      if (pack.speedup() < 2.0) {
        std::fprintf(stderr, "FAIL: parallel pack speedup %.2fx < 2x\n",
                     pack.speedup());
        return 1;
      }
    } else {
      std::printf("note: %u hardware threads < 4, speedup assertion skipped\n",
                  hardware_threads);
    }
    std::printf("check passed: byte-identical, >=5x delta reduction%s\n",
                hardware_threads >= 4 ? ", >=2x parallel speedup" : "");
  }
  return 0;
}
