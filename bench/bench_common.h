// Shared helpers for the per-table/figure benchmark binaries.
//
// Each binary prints the paper-shaped table first (the reproduction output
// recorded in EXPERIMENTS.md), then runs its registered google-benchmark
// timings so `--benchmark_*` flags work as usual.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "alloc/labeler.h"
#include "wq/master.h"

namespace lfm::bench {

// The four §VI.C strategies in presentation order.
inline const std::vector<alloc::Strategy>& all_strategies() {
  static const std::vector<alloc::Strategy> kStrategies = {
      alloc::Strategy::kOracle, alloc::Strategy::kAuto, alloc::Strategy::kGuess,
      alloc::Strategy::kUnmanaged};
  return kStrategies;
}

// Run one workload under every strategy; returns makespans keyed like
// all_strategies(). `workers` and `tasks` are copied per run so strategies
// see identical inputs.
struct StrategyRow {
  double oracle = 0.0;
  double auto_label = 0.0;
  double guess = 0.0;
  double unmanaged = 0.0;
  int64_t auto_retries = 0;
};

inline StrategyRow run_all_strategies(const alloc::LabelerConfig& base,
                                      const std::vector<wq::WorkerSpec>& workers,
                                      const std::vector<wq::TaskSpec>& tasks,
                                      const sim::NetworkParams& net,
                                      const wq::MasterConfig& mc = {}) {
  // The four strategy runs are fully independent simulations (each builds
  // its own Simulation/Network/Labeler/Master and copies the task list), so
  // they run on parallel threads: every figure binary's sweep costs one
  // strategy's wall clock instead of four.
  const auto& strategies = all_strategies();
  std::vector<wq::ScenarioResult> results(strategies.size());
  std::vector<std::thread> threads;
  threads.reserve(strategies.size());
  for (size_t i = 0; i < strategies.size(); ++i) {
    threads.emplace_back([&, i] {
      results[i] = wq::run_scenario(strategies[i], base, workers, tasks, net, mc);
    });
  }
  for (auto& t : threads) t.join();

  StrategyRow row;
  for (const auto& result : results) {
    switch (result.strategy) {
      case alloc::Strategy::kOracle: row.oracle = result.stats.makespan; break;
      case alloc::Strategy::kAuto:
        row.auto_label = result.stats.makespan;
        row.auto_retries = result.stats.exhaustion_retries;
        break;
      case alloc::Strategy::kGuess: row.guess = result.stats.makespan; break;
      case alloc::Strategy::kUnmanaged: row.unmanaged = result.stats.makespan; break;
    }
  }
  return row;
}

inline void print_header(const char* title, const char* source) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s)\n", source);
  std::printf("================================================================\n");
}

inline void print_strategy_table_header(const char* x_label) {
  std::printf("%-12s %12s %12s %12s %12s %8s\n", x_label, "oracle(s)", "auto(s)",
              "guess(s)", "unmanaged(s)", "retries");
}

inline void print_strategy_row(const std::string& x, const StrategyRow& row) {
  std::printf("%-12s %12.1f %12.1f %12.1f %12.1f %8lld\n", x.c_str(), row.oracle,
              row.auto_label, row.guess, row.unmanaged,
              static_cast<long long>(row.auto_retries));
}

}  // namespace lfm::bench

// Each bench binary prints its table, then runs google-benchmark timings.
#define LFM_BENCH_MAIN(print_fn)                         \
  int main(int argc, char** argv) {                      \
    print_fn();                                          \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }
