// Ablation: the labeling objective and the retry policy (DESIGN.md §6).
//
// Compares the paper's expected-cost first-allocation objective against
// max-seen and p95 labels, and whole-node retry against geometric doubling,
// on a bimodal workload where the objectives genuinely diverge (90% light /
// 10% heavy tasks — conservative labels forfeit 3x packing density).
#include "apps/drugscreen.h"
#include "util/rng.h"
#include "bench_common.h"
#include "sim/site.h"

namespace {

using namespace lfm;

alloc::LabelerConfig base_cfg() {
  const sim::Site site = sim::theta();
  alloc::LabelerConfig c;
  c.whole_node = alloc::Resources{static_cast<double>(site.node.cores),
                                  static_cast<double>(site.node.memory_bytes),
                                  static_cast<double>(site.node.disk_bytes)};
  c.guess = apps::drugscreen::guess_allocation();
  c.warmup_samples = 2;
  return c;
}

// A bimodal single-category workload where the objective choice matters:
// 90% of tasks peak near 2 GB, 10% near 30 GB (all single-core, 64 GB node).
// Expected-cost labels near 2 GB and eats the 10% retries; max-seen labels
// at 30 GB and packs 3x fewer tasks per node.
std::vector<wq::TaskSpec> bimodal_tasks(int count) {
  Rng rng(17);
  std::vector<wq::TaskSpec> tasks;
  for (int i = 0; i < count; ++i) {
    wq::TaskSpec t;
    t.id = static_cast<uint64_t>(i + 1);
    t.category = "bimodal";
    t.exec_seconds = rng.uniform(20.0, 40.0);
    t.true_cores = 1.0;
    const bool heavy = rng.chance(0.1);
    t.true_peak = alloc::Resources{
        1.0, heavy ? rng.uniform(25e9, 30e9) : rng.uniform(1.5e9, 2.2e9),
        rng.uniform(0.5e9, 1.5e9)};
    t.peak_fraction = rng.uniform(0.3, 0.9);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

void print_table() {
  lfm::bench::print_header("Ablation: labeling objective x retry policy",
                           "DESIGN.md ablation (the [21] algorithm variants)");
  const auto tasks = bimodal_tasks(300);
  const std::vector<wq::WorkerSpec> workers(
      8, wq::WorkerSpec{alloc::Resources{16, 64e9, 200e9}, 0.0});
  const sim::NetworkParams net = sim::theta().network;

  std::printf("%-16s %-12s %14s %10s\n", "label mode", "retry", "makespan (s)",
              "retries");
  for (const auto mode : {alloc::LabelMode::kExpectedCost, alloc::LabelMode::kMaxSeen,
                          alloc::LabelMode::kPercentile95}) {
    for (const auto retry :
         {alloc::RetryPolicy::kWholeNode, alloc::RetryPolicy::kGeometric}) {
      alloc::LabelerConfig cfg = base_cfg();
      cfg.whole_node = alloc::Resources{16, 64e9, 200e9};
      cfg.label_mode = mode;
      cfg.retry_policy = retry;
      const auto result =
          wq::run_scenario(alloc::Strategy::kAuto, cfg, workers, tasks, net);
      std::printf("%-16s %-12s %14.1f %10lld\n", alloc::label_mode_name(mode),
                  alloc::retry_policy_name(retry), result.stats.makespan,
                  static_cast<long long>(result.stats.exhaustion_retries));
    }
  }
  std::printf(
      "\n(expected: expected-cost labels pack tighter than max-seen with few\n"
      " retries — the trade-off [21] optimizes; p95 labels retry more;\n"
      " geometric retry can save capacity but risks repeated failures)\n");
}

void BM_expected_cost(benchmark::State& state) {
  apps::drugscreen::Params params;
  params.molecules = 30;
  const auto tasks = apps::drugscreen::generate(params);
  const std::vector<wq::WorkerSpec> workers(
      14, wq::WorkerSpec{base_cfg().whole_node, 0.0});
  for (auto _ : state) {
    const auto r = wq::run_scenario(alloc::Strategy::kAuto, base_cfg(), workers,
                                    tasks, sim::theta().network);
    benchmark::DoNotOptimize(r.stats.makespan);
  }
}
BENCHMARK(BM_expected_cost);

}  // namespace

LFM_BENCH_MAIN(print_table)
