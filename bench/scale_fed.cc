// Federated foreman tier throughput (src/fed/): a live RootMaster sharding
// task groups over forked Foreman processes, each running its own
// MasterService over forked workers — the whole two-level tree on loopback.
//
// Three phases:
//
//   1. Foreman-count scaling — the same echo workload (wire-only, no LFM
//      fork) dispatched through 1, 2, and 4 foreman processes with two
//      echo workers each. Rows measure end-to-end group throughput at the
//      root; the 4-vs-1 ratio is the headline. On a single-core runner the
//      processes time-slice one CPU, so the >= 1.5x expectation is only
//      checked when the machine has >= 4 hardware threads.
//
//   2. Warm-sibling caching — eight groups all naming the same 1 MiB
//      cacheable file, run (a) through a flat MasterService fanning out to
//      4 workers and (b) through the federated tree. Flat, the master
//      ships the file once per worker link; federated, cache-affinity
//      routing concentrates the groups on the warm shard and the file
//      crosses the root link once, with the foreman-tier chunk cache
//      fanning it out locally. The row compares bytes sent at the top
//      link.
//
//   3. End-to-end kill — >= 1k Python tasks in 25-task groups through two
//      foreman processes (two LFM workers each), with one foreman
//      SIGKILLed mid-run once it verifiably holds in-flight groups. The
//      same tasks run through an in-process LocalWorker first; the bench
//      verifies exactly-once completion and bit-identical payloads across
//      the kill (requeue to the surviving shard, done-flag dedup).
//
// Usage:
//   scale_fed                          # 6000 echo tasks/run, 1000 e2e tasks
//   scale_fed N                        # echo task count per scaling run
//   scale_fed --e2e M                  # e2e task count
//   scale_fed --json BENCH_fed.json --check
//   scale_fed --trace                  # extra traced phase: root + 2 foremen
//                                      # + 4 LFM workers with distributed
//                                      # tracing on, merged into ONE
//                                      # Perfetto-loadable trace
//   scale_fed --trace-out PATH         # where the merged trace lands
//                                      # (default obs_out/scale_fed.trace.json)
//   scale_fed --http PORT              # live /metrics /healthz /statusz on
//                                      # the traced root (0 = ephemeral);
//                                      # the port prints only after a
//                                      # successful bind, bind failure exits
//                                      # nonzero immediately
//   scale_fed --http-linger SECONDS    # keep serving that long after the
//                                      # traced run completes
//
// --check exits nonzero unless the warm workload ships fewer top-link
// bytes federated than flat, the e2e phase preserved exactly-once
// bit-identical results across the foreman kill, and (on >= 4 hardware
// threads) 4 foremen beat 1 foreman by >= 1.5x. With --trace it also
// requires some task's spans to land in >= 3 process lanes of the merged
// trace under one trace id.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fed/foreman.h"
#include "fed/root_master.h"
#include "net/event_loop.h"
#include "net/master_service.h"
#include "net/socket.h"
#include "net/worker_client.h"
#include "obs/collector.h"
#include "obs/http_export.h"
#include "obs/recorder.h"
#include "serde/pickle.h"
#include "util/error.h"
#include "wq/protocol.h"
#include "wq/worker.h"

namespace {

using namespace lfm;

constexpr int kWorkersPerForeman = 2;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

wq::TaskMessage echo_task(uint64_t id) {
  wq::TaskMessage t;
  t.task_id = id;
  t.category = "fed-bench";
  t.command_line = "echo";  // never executed: workers run in echo mode
  t.allocation = alloc::Resources{1.0, 512e6, 1e9};
  return t;
}

pid_t fork_echo_worker(uint16_t port, const std::string& name) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Drop inherited fds: a surviving copy of a parent listener keeps its
  // port accepting after that tier stops serving it (see net/socket.h).
  net::close_inherited_fds();
  int status = 1;
  try {
    net::WorkerClientOptions o;
    o.port = port;
    o.name = name;
    o.echo_results = true;
    o.echo_payload = serde::Bytes{'o', 'k'};
    net::WorkerClient client(o);
    client.run();
    status = 0;
  } catch (...) {
  }
  _exit(status);
}

// A foreman process that forks its own echo workers: no port reservation
// needed, the ephemeral worker_port() is bound before the forks.
pid_t fork_echo_foreman(uint16_t root_port, const std::string& name) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  net::close_inherited_fds();
  int status = 1;
  try {
    fed::ForemanConfig fc;
    fc.name = name;
    fc.root_port = root_port;
    fc.service.tasks_per_worker = 32;
    fc.stats_interval = 0.2;
    fed::Foreman foreman(fc);
    std::vector<pid_t> kids;
    for (int i = 0; i < kWorkersPerForeman; ++i) {
      kids.push_back(
          fork_echo_worker(foreman.worker_port(), name + "-w" + std::to_string(i)));
    }
    foreman.run();
    status = 0;
    for (const pid_t kid : kids) {
      int s = -1;
      if (waitpid(kid, &s, 0) != kid || !WIFEXITED(s) || WEXITSTATUS(s) != 0) {
        status = 1;
      }
    }
  } catch (...) {
  }
  _exit(status);
}

pid_t fork_python_worker(uint16_t port, const std::string& name,
                         bool traced = false) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  net::close_inherited_fds();
  int status = 1;
  try {
    if (traced) {
      // Fresh recorder state in the child: events buffered in the parent
      // before the fork must not ship twice.
      obs::Recorder::global().set_enabled(true);
      obs::Recorder::global().clear();
    }
    net::WorkerClientOptions o;
    o.port = port;
    o.name = name;
    o.worker.poll_interval = 0.01;
    // Orphan discipline after a SIGKILLed foreman: short idle timeout plus
    // a finite budget that bare accepts do not refill.
    o.idle_timeout = 0.5;
    o.max_reconnect_attempts = 4;
    chaos::RetryPolicy fast;
    fast.backoff_base = 0.01;
    fast.backoff_max = 0.05;
    o.reconnect = fast;
    net::WorkerClient client(o);
    client.run();
    status = 0;
  } catch (...) {
  }
  _exit(status);
}

pid_t fork_lfm_foreman(uint16_t root_port, const std::string& name,
                       bool traced = false) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  net::close_inherited_fds();
  int status = 1;
  try {
    if (traced) {
      obs::Recorder::global().set_enabled(true);
      obs::Recorder::global().clear();
    }
    fed::ForemanConfig fc;
    fc.name = name;
    fc.root_port = root_port;
    fc.stats_interval = 0.1;
    fc.service.tasks_per_worker = 4;
    fed::Foreman foreman(fc);
    std::vector<pid_t> kids;
    for (int i = 0; i < kWorkersPerForeman; ++i) {
      kids.push_back(fork_python_worker(foreman.worker_port(),
                                        name + "-w" + std::to_string(i),
                                        traced));
    }
    foreman.run();
    status = 0;
    for (const pid_t kid : kids) {
      int s = -1;
      if (waitpid(kid, &s, 0) != kid || !WIFEXITED(s) || WEXITSTATUS(s) != 0) {
        status = 1;
      }
    }
  } catch (...) {
  }
  _exit(status);
}

void reap(std::vector<pid_t>& pids, const char* phase) {
  for (const pid_t pid : pids) {
    int status = -1;
    if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "scale_fed: %s child %d exited abnormally\n", phase,
                   pid);
      std::exit(1);
    }
  }
  pids.clear();
}

// Run the root's loop until `n` foremen are connected, so the timed window
// starts from a fully formed topology.
void await_foremen(net::EventLoop& loop, fed::RootMaster& root, int n) {
  const uint64_t poll = loop.run_every(0.005, [&] {
    if (root.connected_foremen() >= n) loop.stop();
  });
  const uint64_t watchdog = loop.run_after(60.0, [&] { loop.stop(); });
  loop.run();
  loop.cancel_timer(poll);
  loop.cancel_timer(watchdog);
  if (root.connected_foremen() < n) {
    std::fprintf(stderr, "scale_fed: only %d of %d foremen connected\n",
                 root.connected_foremen(), n);
    std::exit(1);
  }
}

// --- phase 1: foreman-count scaling ------------------------------------------

struct ScaleRow {
  int foremen = 0;
  double tasks_per_sec = 0.0;
  double wall_seconds = 0.0;
};

ScaleRow run_scaling(int foremen, size_t n) {
  constexpr size_t kPerGroup = 50;
  net::EventLoop loop;
  fed::RootMasterConfig rc;
  rc.groups_per_foreman = 4;
  fed::RootMaster root(loop, rc);

  std::vector<pid_t> pids;
  for (int f = 0; f < foremen; ++f) {
    pids.push_back(fork_echo_foreman(
        root.port(), "s" + std::to_string(foremen) + "f" + std::to_string(f)));
  }
  await_foremen(loop, root, foremen);

  const auto t0 = std::chrono::steady_clock::now();
  uint64_t next_id = 1;
  size_t remaining = n;
  int g = 0;
  while (remaining > 0) {
    fed::TaskGroup group;
    group.name = "sg" + std::to_string(g++);
    const size_t take = remaining < kPerGroup ? remaining : kPerGroup;
    for (size_t i = 0; i < take; ++i) group.tasks.push_back(echo_task(next_id++));
    remaining -= take;
    root.submit(std::move(group));
  }
  const fed::RootStats stats = root.run_until_complete(600.0);
  const double dt = seconds_since(t0);
  reap(pids, "scaling");

  if (stats.tasks_completed != static_cast<int64_t>(n) ||
      stats.duplicate_results != 0) {
    std::fprintf(stderr, "scale_fed: scaling run f=%d completed %lld of %zu\n",
                 foremen, static_cast<long long>(stats.tasks_completed), n);
    std::exit(1);
  }
  return {foremen, static_cast<double>(n) / dt, dt};
}

// --- phase 2: warm-sibling caching -------------------------------------------

struct WarmResult {
  int64_t flat_bytes_sent = 0;       // flat MasterService -> 4 worker links
  int64_t federated_bytes_sent = 0;  // RootMaster -> foreman links
  int64_t federated_files_sent = 0;
};

constexpr int kWarmGroups = 8;
constexpr int kWarmPerGroup = 2;
constexpr size_t kWarmFileBytes = 1u << 20;

serde::Bytes warm_file() {
  serde::Bytes file(kWarmFileBytes);
  for (size_t i = 0; i < file.size(); ++i) {
    file[i] = static_cast<uint8_t>(i * 2654435761u >> 13);
  }
  return file;
}

int64_t run_warm_flat() {
  const serde::Bytes file = warm_file();
  net::EventLoop loop;
  net::MasterServiceConfig config;
  config.tasks_per_worker = 1;
  net::MasterService master(loop, config);
  uint64_t id = 1;
  for (int g = 0; g < kWarmGroups; ++g) {
    for (int i = 0; i < kWarmPerGroup; ++i) {
      wq::TaskMessage t = echo_task(id++);
      t.infiles.push_back({"big.dat", static_cast<int64_t>(file.size()), true});
      wq::FileSet files;
      files.emplace("big.dat", file);
      master.submit(std::move(t), files);
    }
  }
  std::vector<pid_t> pids;
  for (int w = 0; w < 4; ++w) {
    pids.push_back(fork_echo_worker(master.port(), "flat-w" + std::to_string(w)));
  }
  const net::NetMasterStats stats = master.run_until_complete(600.0);
  reap(pids, "warm-flat");
  if (stats.tasks_completed != kWarmGroups * kWarmPerGroup) {
    std::fprintf(stderr, "scale_fed: warm flat run incomplete\n");
    std::exit(1);
  }
  return stats.bytes_sent;
}

WarmResult run_warm() {
  WarmResult r;
  r.flat_bytes_sent = run_warm_flat();

  const serde::Bytes file = warm_file();
  net::EventLoop loop;
  fed::RootMasterConfig rc;
  // Depth >= group count: affinity is free to concentrate every warm group
  // on the shard that already holds the file.
  rc.groups_per_foreman = kWarmGroups;
  fed::RootMaster root(loop, rc);
  std::vector<pid_t> pids;
  pids.push_back(fork_echo_foreman(root.port(), "warm-a"));
  pids.push_back(fork_echo_foreman(root.port(), "warm-b"));
  await_foremen(loop, root, 2);

  uint64_t id = 1;
  for (int g = 0; g < kWarmGroups; ++g) {
    fed::TaskGroup group;
    group.name = "warm" + std::to_string(g);
    for (int i = 0; i < kWarmPerGroup; ++i) {
      wq::TaskMessage t = echo_task(id++);
      t.infiles.push_back({"big.dat", static_cast<int64_t>(file.size()), true});
      group.tasks.push_back(std::move(t));
    }
    group.files.emplace("big.dat", file);
    root.submit(std::move(group));
  }
  const fed::RootStats stats = root.run_until_complete(600.0);
  reap(pids, "warm-fed");
  if (stats.tasks_completed != kWarmGroups * kWarmPerGroup) {
    std::fprintf(stderr, "scale_fed: warm federated run incomplete\n");
    std::exit(1);
  }
  r.federated_bytes_sent = stats.bytes_sent;
  r.federated_files_sent = stats.files_sent;
  return r;
}

// --- phase 3: end-to-end kill ------------------------------------------------

struct E2eResult {
  size_t tasks = 0;
  bool killed = false;
  bool exactly_once = false;
  bool bit_identical = false;
  double wall_seconds = 0.0;
  fed::RootStats stats;
};

E2eResult run_e2e(size_t n) {
  const char* module = R"(
def mix(a, b):
    return {'sum': a + b, 'prod': a * b}
)";
  constexpr size_t kPerGroup = 25;
  std::vector<std::pair<wq::TaskMessage, wq::FileSet>> specs;
  specs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    serde::ValueList args;
    args.push_back(serde::Value(static_cast<int64_t>(i)));
    args.push_back(serde::Value(static_cast<int64_t>(7919 + i)));
    specs.push_back(wq::make_python_task(1000 + i, "mix", module, "mix",
                                         serde::Value(std::move(args)),
                                         alloc::Resources{1.0, 512e6, 1e9}));
  }

  E2eResult r;
  r.tasks = n;

  // In-process reference: the bit-identity baseline.
  std::vector<serde::Bytes> expected(n);
  {
    wq::LocalWorkerOptions wo;
    wo.poll_interval = 0.005;
    wq::LocalWorker direct(wo);
    for (size_t i = 0; i < n; ++i) {
      const wq::ResultMessage res =
          direct.execute(specs[i].first, specs[i].second);
      if (res.exit_code != 0) {
        std::fprintf(stderr, "scale_fed: direct task %zu failed\n", i);
        std::exit(1);
      }
      expected[i] = res.payload;
    }
  }

  net::EventLoop loop;
  fed::RootMasterConfig rc;
  rc.groups_per_foreman = 4;
  fed::RootMaster root(loop, rc);

  const pid_t victim = fork_lfm_foreman(root.port(), "e0");
  const pid_t survivor = fork_lfm_foreman(root.port(), "e1");
  await_foremen(loop, root, 2);

  size_t next = 0;
  int g = 0;
  while (next < n) {
    fed::TaskGroup group;
    group.name = "eg" + std::to_string(g++);
    const size_t take = (n - next) < kPerGroup ? (n - next) : kPerGroup;
    for (size_t i = 0; i < take; ++i) {
      auto& [task, files] = specs[next++];
      group.tasks.push_back(task);
      for (const auto& [fname, bytes] : files) group.files.emplace(fname, bytes);
    }
    root.submit(std::move(group));
  }

  std::map<uint64_t, int> seen;
  root.set_on_result([&](const wq::ResultMessage& msg) {
    seen[msg.task_id] += 1;
    if (!r.killed) {
      // Kill only once the victim shard verifiably holds in-flight groups,
      // so the SIGKILL is guaranteed to orphan work that must requeue.
      const std::map<std::string, size_t> loads = root.shard_loads();
      auto it = loads.find("e0");
      if (it != loads.end() && it->second >= 1) {
        r.killed = true;
        ::kill(victim, SIGKILL);
      }
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  r.stats = root.run_until_complete(600.0);
  r.wall_seconds = seconds_since(t0);

  int status = -1;
  if (waitpid(victim, &status, 0) != victim || !WIFSIGNALED(status) ||
      WTERMSIG(status) != SIGKILL) {
    std::fprintf(stderr, "scale_fed: victim foreman not killed as expected\n");
    std::exit(1);
  }
  status = -1;
  if (waitpid(survivor, &status, 0) != survivor || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "scale_fed: surviving foreman exited abnormally\n");
    std::exit(1);
  }

  r.exactly_once = seen.size() == n;
  for (const auto& [id, count] : seen) {
    if (count != 1) r.exactly_once = false;
  }
  r.bit_identical = root.results().size() == n;
  for (size_t i = 0; i < n && r.bit_identical; ++i) {
    const wq::ResultMessage& res = root.results()[i];
    if (res.exit_code != 0 || res.payload != expected[i]) {
      r.bit_identical = false;
    }
  }
  return r;
}

// --- traced phase: distributed tracing across the forked tree ----------------

struct HttpOptions {
  bool enabled = false;
  uint16_t port = 0;
  double linger = 0.0;  // serve this long after the run completes
};

struct TraceResult {
  size_t tasks = 0;
  size_t events = 0;         // merged events in the collector
  size_t sources = 0;        // distinct (process, clock-domain) lanes
  size_t max_lanes = 0;      // most lanes any one trace id spans
  uint64_t sample_trace = 0; // a trace id achieving max_lanes
  int64_t telemetry_frames = 0;
  int64_t dropped = 0;
  double wall_seconds = 0.0;
  std::string path;
};

// One forked-tree run. `telemetry` off runs the identical topology and
// workload with no process recording — the baseline for the overhead
// measurement. An empty `out_path` skips writing the merged document.
TraceResult run_traced(size_t n, const std::string& out_path,
                       const HttpOptions& http_opts, bool telemetry = true) {
  const char* module = R"(
def mix(a, b):
    return {'sum': a + b, 'prod': a * b}
)";
  constexpr size_t kPerGroup = 25;
  // Forked children inherit stdio buffers; flush so a piped stdout doesn't
  // replay earlier phases' output once per child.
  std::fflush(stdout);
  obs::Recorder& rec = obs::Recorder::global();
  if (telemetry) {
    rec.set_enabled(true);
    rec.clear();
  }

  obs::Collector collector;
  net::EventLoop loop;
  fed::RootMasterConfig rc;
  rc.groups_per_foreman = 4;
  if (telemetry) rc.collector = &collector;
  fed::RootMaster root(loop, rc);

  std::unique_ptr<obs::HttpEndpoint> http;
  if (http_opts.enabled) {
    obs::HttpEndpointConfig hc;
    hc.port = http_opts.port;
    hc.statusz = [&root] { return root.statusz_value(); };
    try {
      http = std::make_unique<obs::HttpEndpoint>(loop, hc);
    } catch (const Error& e) {
      std::fprintf(stderr, "scale_fed: http bind failed on port %u: %s\n",
                   http_opts.port, e.what());
      std::exit(1);
    }
    // Printed only after the successful bind — safe to script against.
    std::printf("scale_fed: http endpoint listening on 127.0.0.1:%u\n",
                http->port());
    std::fflush(stdout);
  }

  // The acceptance topology: this process is the root, two forked foremen,
  // each forking kWorkersPerForeman LFM workers — every process tracing.
  std::vector<pid_t> pids;
  pids.push_back(fork_lfm_foreman(root.port(), "t0", /*traced=*/telemetry));
  pids.push_back(fork_lfm_foreman(root.port(), "t1", /*traced=*/telemetry));
  await_foremen(loop, root, 2);

  size_t next = 0;
  int g = 0;
  uint64_t id = 1;
  while (next < n) {
    fed::TaskGroup group;
    group.name = "tg" + std::to_string(g++);
    const size_t take = (n - next) < kPerGroup ? (n - next) : kPerGroup;
    for (size_t i = 0; i < take; ++i) {
      serde::ValueList args;
      args.push_back(serde::Value(static_cast<int64_t>(next)));
      args.push_back(serde::Value(static_cast<int64_t>(7919 + next)));
      auto [task, files] = wq::make_python_task(
          id++, "mix", module, "mix", serde::Value(std::move(args)),
          alloc::Resources{1.0, 512e6, 1e9});
      group.tasks.push_back(std::move(task));
      for (auto& [fname, bytes] : files) group.files.emplace(fname, bytes);
      ++next;
    }
    root.submit(std::move(group));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const fed::RootStats stats = root.run_until_complete(600.0);
  const double wall = seconds_since(t0);
  reap(pids, "traced");
  if (stats.tasks_completed != static_cast<int64_t>(n)) {
    std::fprintf(stderr, "scale_fed: traced run completed %lld of %zu\n",
                 static_cast<long long>(stats.tasks_completed), n);
    std::exit(1);
  }
  if (http && http_opts.linger > 0) {
    loop.run_after(http_opts.linger, [&loop] { loop.stop(); });
    loop.run();
    std::printf("scale_fed: http served %lld request(s)\n",
                static_cast<long long>(http->requests_served()));
  }

  // The root's own spans merge last (same clock, no offset), then the whole
  // tree lands in one Perfetto-loadable document.
  if (telemetry) {
    collector.add_local("root", rec.drain_events());
    if (!out_path.empty()) collector.write(out_path);
    rec.set_enabled(false);
    rec.clear();
  }

  TraceResult tr;
  tr.wall_seconds = wall;
  tr.tasks = n;
  tr.events = collector.event_count();
  tr.sources = collector.source_count();
  tr.telemetry_frames = stats.telemetry_frames;
  tr.dropped = collector.dropped_total();
  tr.path = out_path;
  // How many process lanes does the best-covered trace id span? The
  // acceptance bar is >= 3 (root, a foreman, a worker).
  std::map<uint64_t, std::set<uint64_t>> lanes_by_trace;
  for (const obs::TelemetryEvent& ev : collector.events()) {
    if (ev.trace_id != 0) lanes_by_trace[ev.trace_id].insert(ev.pid);
  }
  for (const auto& [trace, lanes] : lanes_by_trace) {
    if (lanes.size() > tr.max_lanes) {
      tr.max_lanes = lanes.size();
      tr.sample_trace = trace;
    }
  }
  return tr;
}

void write_json(const char* path, size_t echo_count,
                const std::vector<ScaleRow>& rows, double speedup,
                unsigned hw_threads, const WarmResult& warm,
                const E2eResult& e2e) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "scale_fed: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"scale_fed\",\n");
  std::fprintf(f, "  \"workers_per_foreman\": %d,\n", kWorkersPerForeman);
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw_threads);
  std::fprintf(f, "  \"echo_tasks_per_run\": %zu,\n", echo_count);
  std::fprintf(f, "  \"scaling\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"foremen\": %d, \"tasks_per_sec\": %.0f, "
                 "\"wall_seconds\": %.3f}%s\n",
                 rows[i].foremen, rows[i].tasks_per_sec, rows[i].wall_seconds,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_4_foremen_vs_1\": %.2f,\n", speedup);
  std::fprintf(f, "  \"warm_sibling\": {\n");
  std::fprintf(f, "    \"groups\": %d,\n", kWarmGroups);
  std::fprintf(f, "    \"file_bytes\": %zu,\n", kWarmFileBytes);
  std::fprintf(f, "    \"flat_master_bytes_sent\": %lld,\n",
               static_cast<long long>(warm.flat_bytes_sent));
  std::fprintf(f, "    \"federated_root_bytes_sent\": %lld,\n",
               static_cast<long long>(warm.federated_bytes_sent));
  std::fprintf(f, "    \"federated_root_files_sent\": %lld,\n",
               static_cast<long long>(warm.federated_files_sent));
  std::fprintf(f, "    \"top_link_byte_ratio\": %.2f\n",
               static_cast<double>(warm.flat_bytes_sent) /
                   static_cast<double>(warm.federated_bytes_sent));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"e2e\": {\n");
  std::fprintf(f, "    \"tasks\": %zu,\n", e2e.tasks);
  std::fprintf(f, "    \"foremen\": 2,\n");
  std::fprintf(f, "    \"injected_foreman_kills\": %d,\n", e2e.killed ? 1 : 0);
  std::fprintf(f, "    \"completed\": %lld,\n",
               static_cast<long long>(e2e.stats.tasks_completed));
  std::fprintf(f, "    \"requeued_groups\": %lld,\n",
               static_cast<long long>(e2e.stats.requeued_groups));
  std::fprintf(f, "    \"requeued_tasks\": %lld,\n",
               static_cast<long long>(e2e.stats.requeued_tasks));
  std::fprintf(f, "    \"duplicate_results\": %lld,\n",
               static_cast<long long>(e2e.stats.duplicate_results));
  std::fprintf(f, "    \"foremen_lost\": %lld,\n",
               static_cast<long long>(e2e.stats.foremen_lost));
  std::fprintf(f, "    \"stats_frames\": %lld,\n",
               static_cast<long long>(e2e.stats.stats_frames));
  std::fprintf(f, "    \"exactly_once\": %s,\n",
               e2e.exactly_once ? "true" : "false");
  std::fprintf(f, "    \"bit_identical_to_in_process\": %s,\n",
               e2e.bit_identical ? "true" : "false");
  std::fprintf(f, "    \"net_wall_seconds\": %.3f\n", e2e.wall_seconds);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  size_t echo_count = 6000;
  size_t e2e_count = 1000;
  const char* json_path = nullptr;
  bool check = false;
  bool trace = false;
  std::string trace_out = "obs_out/scale_fed.trace.json";
  HttpOptions http_opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--e2e") == 0 && i + 1 < argc) {
      e2e_count = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace = true;
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      http_opts.enabled = true;
      http_opts.port =
          static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--http-linger") == 0 && i + 1 < argc) {
      http_opts.linger = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      echo_count = static_cast<size_t>(std::strtoull(argv[i], nullptr, 10));
    }
  }
  if (echo_count == 0) echo_count = 6000;
  if (e2e_count == 0) e2e_count = 1000;
  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::vector<ScaleRow> rows;
  for (const int f : {1, 2, 4}) rows.push_back(run_scaling(f, echo_count));
  const double speedup = rows.back().tasks_per_sec / rows.front().tasks_per_sec;

  std::printf("federated scaling (%zu echo tasks per run, %d workers per "
              "foreman, %u hw threads)\n",
              echo_count, kWorkersPerForeman, hw_threads);
  std::printf("%-10s %14s %14s\n", "foremen", "tasks/sec", "wall sec");
  for (const ScaleRow& row : rows) {
    std::printf("%-10d %14.0f %14.3f\n", row.foremen, row.tasks_per_sec,
                row.wall_seconds);
  }
  std::printf("4 foremen vs 1: %.2fx\n\n", speedup);

  const WarmResult warm = run_warm();
  std::printf("warm-sibling top-link bytes (%d groups sharing one %zu-byte "
              "cacheable file)\n",
              kWarmGroups, kWarmFileBytes);
  std::printf("  flat master -> workers: %lld bytes\n",
              static_cast<long long>(warm.flat_bytes_sent));
  std::printf("  federated root -> foremen: %lld bytes (%lld file frame(s))\n",
              static_cast<long long>(warm.federated_bytes_sent),
              static_cast<long long>(warm.federated_files_sent));
  std::printf("  top-link reduction: %.2fx\n\n",
              static_cast<double>(warm.flat_bytes_sent) /
                  static_cast<double>(warm.federated_bytes_sent));

  const E2eResult e2e = run_e2e(e2e_count);
  std::printf("end-to-end kill: %zu tasks, 2 foremen x %d workers, %s\n",
              e2e.tasks, kWorkersPerForeman,
              e2e.killed ? "1 foreman SIGKILLed" : "no kill injected");
  std::printf("  completed=%lld requeued_groups=%lld requeued_tasks=%lld "
              "duplicates=%lld lost=%lld\n",
              static_cast<long long>(e2e.stats.tasks_completed),
              static_cast<long long>(e2e.stats.requeued_groups),
              static_cast<long long>(e2e.stats.requeued_tasks),
              static_cast<long long>(e2e.stats.duplicate_results),
              static_cast<long long>(e2e.stats.foremen_lost));
  std::printf("  exactly_once=%s bit_identical=%s wall=%.3fs\n",
              e2e.exactly_once ? "yes" : "NO",
              e2e.bit_identical ? "yes" : "NO", e2e.wall_seconds);

  TraceResult traced;
  double trace_overhead_pct = 0.0;
  if (trace) {
    const size_t trace_tasks = e2e_count < 100 ? e2e_count : 100;
    // Telemetry overhead, interleaved min-of-5: alternate untraced and
    // traced runs of the identical topology and workload so drift (page
    // cache, CPU frequency) hits both sides equally; min wall per side.
    const HttpOptions no_http;
    double off_wall = 0.0;
    double on_wall = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const bool last = rep == 4;
      const TraceResult off =
          run_traced(trace_tasks, "", no_http, /*telemetry=*/false);
      if (rep == 0 || off.wall_seconds < off_wall) off_wall = off.wall_seconds;
      const TraceResult on =
          run_traced(trace_tasks, last ? trace_out : std::string(),
                     last ? http_opts : no_http, /*telemetry=*/true);
      if (rep == 0 || on.wall_seconds < on_wall) on_wall = on.wall_seconds;
      if (last) traced = on;
    }
    trace_overhead_pct = (on_wall - off_wall) / off_wall * 100.0;
    std::printf("\ndistributed trace: %zu tasks through root + 2 foremen + "
                "%d workers\n",
                traced.tasks, 2 * kWorkersPerForeman);
    std::printf("  telemetry off %.3fs, on %.3fs: %+.1f%% overhead "
                "(interleaved min of 5)\n",
                off_wall, on_wall, trace_overhead_pct);
    std::printf("  merged %zu event(s) from %zu process lane(s), %lld "
                "telemetry frame(s), %lld dropped\n",
                traced.events, traced.sources,
                static_cast<long long>(traced.telemetry_frames),
                static_cast<long long>(traced.dropped));
    std::printf("  best-covered trace id 0x%016llx spans %zu lane(s)\n",
                static_cast<unsigned long long>(traced.sample_trace),
                traced.max_lanes);
    std::printf("  wrote %s (load in ui.perfetto.dev)\n", traced.path.c_str());
  }

  if (json_path != nullptr) {
    write_json(json_path, echo_count, rows, speedup, hw_threads, warm, e2e);
  }

  if (check) {
    bool ok = true;
    if (hw_threads >= 4) {
      if (speedup < 1.5) {
        std::fprintf(stderr, "CHECK FAILED: 4 foremen only %.2fx 1 (< 1.5x)\n",
                     speedup);
        ok = false;
      }
    } else {
      std::printf("scaling gate skipped: %u hardware thread(s), processes "
                  "time-slice one core\n",
                  hw_threads);
    }
    if (warm.federated_bytes_sent >= warm.flat_bytes_sent) {
      std::fprintf(stderr,
                   "CHECK FAILED: federated top link shipped %lld bytes, flat "
                   "shipped %lld\n",
                   static_cast<long long>(warm.federated_bytes_sent),
                   static_cast<long long>(warm.flat_bytes_sent));
      ok = false;
    }
    if (e2e.stats.tasks_completed != static_cast<int64_t>(e2e.tasks)) {
      std::fprintf(stderr, "CHECK FAILED: e2e completed %lld of %zu\n",
                   static_cast<long long>(e2e.stats.tasks_completed),
                   e2e.tasks);
      ok = false;
    }
    if (!e2e.killed || e2e.stats.foremen_lost < 1 ||
        e2e.stats.requeued_groups < 1) {
      std::fprintf(stderr, "CHECK FAILED: foreman kill not exercised "
                           "(killed=%d lost=%lld requeued=%lld)\n",
                   e2e.killed ? 1 : 0,
                   static_cast<long long>(e2e.stats.foremen_lost),
                   static_cast<long long>(e2e.stats.requeued_groups));
      ok = false;
    }
    if (!e2e.exactly_once || !e2e.bit_identical) {
      std::fprintf(stderr, "CHECK FAILED: exactly_once=%d bit_identical=%d\n",
                   e2e.exactly_once ? 1 : 0, e2e.bit_identical ? 1 : 0);
      ok = false;
    }
    if (trace && traced.max_lanes < 3) {
      std::fprintf(stderr,
                   "CHECK FAILED: no trace id spans >= 3 process lanes "
                   "(best %zu)\n",
                   traced.max_lanes);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("CHECK PASSED: warm top link %.2fx smaller federated; e2e "
                "exactly-once, bit-identical across a foreman kill%s\n",
                static_cast<double>(warm.flat_bytes_sent) /
                    static_cast<double>(warm.federated_bytes_sent),
                hw_threads >= 4 ? "; 4 foremen >= 1.5x 1" : "");
  }
  return 0;
}
