// Example: the HEP columnar-analysis workflow end to end, two ways.
//
// Part 1 runs REAL analysis tasks (the columnar histogram kernel) through
// the Parsl-like DataFlowKernel on the LFM-backed local executor: each task
// is forked, monitored, and its usage recorded — a single-node version of
// the paper's architecture.
//
// Part 2 runs the cluster-scale version on the discrete-event simulator,
// comparing all four resource-management strategies on the paper's
// ND-CRC configuration (Fig 6 conditions).
//
// Build & run:  ./build/examples/hep_workflow
#include <cstdio>

#include "apps/hep.h"
#include "flow/dfk.h"
#include "sim/site.h"
#include "wq/master.h"

namespace {

using namespace lfm;
using serde::Value;
using serde::ValueDict;
using serde::ValueList;

void run_real_tasks() {
  std::printf("== Part 1: real columnar analysis under LFMs ==\n");
  flow::LocalLfmExecutor executor(2);
  flow::DataFlowKernel dfk(executor);

  flow::App analyze = flow::App::make("hep-analyze", apps::hep::analysis_task);
  analyze.limits.memory_bytes = 512LL << 20;
  analyze.limits.wall_time = 60.0;

  // Fan out chunks, then merge histograms (futures form the DAG).
  std::vector<flow::Future> partials;
  for (int chunk = 0; chunk < 6; ++chunk) {
    ValueDict args;
    args["events"] = Value(int64_t{50000});
    args["bins"] = Value(int64_t{40});
    args["lo"] = Value(0.0);
    args["hi"] = Value(200.0);
    args["seed"] = Value(int64_t{1000 + chunk});
    partials.push_back(dfk.submit(analyze, {flow::Arg(Value(std::move(args)))}));
  }

  const flow::App merge = flow::App::make("hep-merge", [](const Value& args) {
    ValueList totals;
    int64_t events = 0;
    for (const auto& partial : args.as_list()) {
      const auto& hist = partial.at("histogram").as_list();
      if (totals.empty()) totals.assign(hist.size(), Value(int64_t{0}));
      for (size_t i = 0; i < hist.size(); ++i) {
        totals[i] = Value(totals[i].as_int() + hist[i].as_int());
      }
      events += partial.at("events").as_int();
    }
    ValueDict out;
    out["histogram"] = Value(std::move(totals));
    out["events"] = Value(events);
    return Value(std::move(out));
  });

  std::vector<flow::Arg> merge_args(partials.begin(), partials.end());
  const flow::Future total = dfk.submit(merge, std::move(merge_args));
  const Value merged = total.result();
  std::printf("merged %lld events into %zu bins\n",
              static_cast<long long>(merged.at("events").as_int()),
              merged.at("histogram").as_list().size());

  dfk.wait_all();
  executor.drain();
  std::printf("per-task LFM observations:\n");
  for (const auto& [name, usage] : executor.observations()) {
    std::printf("  %-12s %s\n", name.c_str(), usage.summary().c_str());
  }
}

void run_cluster_simulation() {
  std::printf("\n== Part 2: cluster-scale strategy comparison (simulated) ==\n");
  apps::hep::Params params;
  params.tasks = 100;
  const auto tasks = apps::hep::generate(params);

  alloc::LabelerConfig cfg;
  cfg.whole_node = alloc::Resources{8.0, 8e9, 16e9};
  cfg.guess = apps::hep::guess_allocation();
  cfg.warmup_samples = 2;
  const std::vector<wq::WorkerSpec> workers(
      20, wq::WorkerSpec{alloc::Resources{8.0, 8e9, 16e9}, 0.0});
  const sim::NetworkParams net = sim::nd_crc().network;

  std::printf("%-12s %14s %10s %10s %12s\n", "strategy", "makespan (s)", "retries",
              "util", "cache hits");
  for (const auto strategy :
       {alloc::Strategy::kOracle, alloc::Strategy::kAuto, alloc::Strategy::kGuess,
        alloc::Strategy::kUnmanaged}) {
    const auto result = wq::run_scenario(strategy, cfg, workers, tasks, net);
    std::printf("%-12s %14.1f %10lld %9.0f%% %12lld\n",
                alloc::strategy_name(strategy), result.stats.makespan,
                static_cast<long long>(result.stats.exhaustion_retries),
                result.stats.utilization() * 100.0,
                static_cast<long long>(result.stats.cache_hits));
  }
}

}  // namespace

int main() {
  run_real_tasks();
  run_cluster_simulation();
  return 0;
}
