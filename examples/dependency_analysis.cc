// Example: transparent dependency detection and environment packaging
// (paper §V) — from Python source to a packed, relocatable environment.
//
// Walks the full pipeline on a realistic Parsl application:
//   1. parse the Python source with the mini-Python front end
//   2. statically scan each @python_app function's imports
//   3. pin each import against the installed package index
//   4. solve the transitive closure into a minimal environment
//   5. render requirements.txt / environment.yml
//   6. conda-pack the environment into a real .tar and relocate its prefix
//
// Build & run:  ./build/examples/dependency_analysis
#include <cstdio>

#include "flow/plan.h"
#include "pkg/index.h"
#include "pkg/packer.h"
#include "util/units.h"

namespace {

const char* kUserProgram = R"(
"""A drug-screening Parsl application, as a user would write it."""
import parsl
from parsl import python_app


@python_app
def featurize(smiles_batch):
    import numpy as np
    from rdkit import Chem
    import mordred
    mols = [Chem.MolFromSmiles(s) for s in smiles_batch]
    return np.stack([mordred.Calculator()(m) for m in mols])


@python_app
def predict(features):
    import numpy as np
    import tensorflow as tf
    model = tf.keras.models.load_model('docking.h5')
    return model.predict(np.asarray(features))


@python_app
def summarize(scores):
    import json
    return json.dumps({"count": len(scores)})
)";

}  // namespace

int main() {
  using namespace lfm;

  std::printf("== Static dependency analysis & packaging ==\n");
  const pkg::PackageIndex& installed = pkg::standard_index();

  for (const char* fn : {"featurize", "predict", "summarize"}) {
    std::printf("\n--- function %s ---\n", fn);
    const auto plan = flow::plan_function_dependencies(kUserProgram, fn, installed);

    std::printf("imports:");
    for (const auto& name : plan.import_names) std::printf(" %s", name.c_str());
    std::printf("\npinned requirements:\n");
    for (const auto& req : plan.requirements) {
      std::printf("  %s\n", req.str().c_str());
    }
    for (const auto& diag : plan.diagnostics) {
      std::printf("  [warn:%d] %s\n", diag.line, diag.message.c_str());
    }

    const auto env = flow::build_environment(fn, plan, installed);
    if (!env.ok()) {
      std::printf("  environment failed: %s\n", env.error().c_str());
      continue;
    }
    std::printf("minimal environment: %zu packages, %s, %d files\n",
                env.value().package_count(),
                format_bytes(env.value().total_size()).c_str(),
                env.value().total_files());
  }

  // Pack the lightest function's environment for distribution.
  std::printf("\n--- conda-pack the 'summarize' environment ---\n");
  const auto plan = flow::plan_function_dependencies(kUserProgram, "summarize", installed);
  const auto env = flow::build_environment("summarize", plan, installed);
  if (env.ok()) {
    pkg::Archive archive;
    const std::string master_prefix = "/home/user/miniconda3/envs/summarize";
    archive.add_file("bin/activate",
                     pkg::Bytes{},  // filled below
                     0755);
    std::string activate = "export CONDA_PREFIX=" + master_prefix + "\n";
    archive.entries()[0].data.assign(activate.begin(), activate.end());
    for (const auto& f : env.value().synthesize_files()) {
      if (f.is_text) {
        std::string content = "prefix: " + master_prefix + "\n";
        archive.add_file(f.path, pkg::Bytes(content.begin(), content.end()));
      }
    }
    const pkg::Bytes tarball = pkg::write_tar(archive);
    std::printf("packed archive: %s (%zu entries)\n",
                format_bytes(static_cast<int64_t>(tarball.size())).c_str(),
                archive.entries().size());

    // What a worker does after fetching the tarball:
    pkg::Archive received = pkg::read_tar(tarball);
    const int relocated =
        pkg::relocate_prefix(received, master_prefix, "/tmp/worker17/env");
    std::printf("worker relocation rewrote %d text files\n", relocated);
  }
  return 0;
}
