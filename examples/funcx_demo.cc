// Example: funcX-style FaaS with LFMs in place of containers (paper §VI.C.4).
//
// Registers the image-classification function once (serialized with its
// dependency list), stands up an LFM-backed endpoint, and submits a batch of
// classification requests. A deliberately leaky variant shows per-invocation
// containment: its invocations are killed at the memory limit while the
// endpoint keeps serving.
//
// Build & run:  ./build/examples/funcx_demo
#include <cstdio>
#include <vector>

#include "apps/imageclass.h"
#include "faas/funcx.h"
#include "util/units.h"

namespace {

using namespace lfm;
using serde::Value;
using serde::ValueDict;

Value leaky_classify(const Value& args) {
  // A buggy function: hoards memory proportional to... nothing sensible.
  std::vector<std::string> hoard;
  for (int i = 0; i < 100000; ++i) {
    hoard.emplace_back(1 << 20, 'x');
    for (size_t j = 0; j < hoard.back().size(); j += 4096) hoard.back()[j] = 'y';
  }
  return apps::imageclass::classify_task(args);
}

}  // namespace

int main() {
  std::printf("== funcX with lightweight function monitors ==\n");
  faas::FuncXService service;
  flow::LocalLfmExecutor executor(2);
  service.add_endpoint(std::make_shared<faas::Endpoint>("hpc-endpoint", executor));

  // Register the healthy model function with its dependency list, as funcX
  // registration does.
  monitor::ResourceLimits limits;
  limits.memory_bytes = 512LL << 20;
  limits.wall_time = 120.0;
  const auto classify_id = service.registry().register_function(
      "resnet-classify", apps::imageclass::classify_task,
      {"keras", "tensorflow", "numpy"}, limits);

  monitor::ResourceLimits tight;
  tight.memory_bytes = 64LL << 20;
  const auto leaky_id = service.registry().register_function(
      "leaky-classify", leaky_classify, {"keras"}, tight);

  // Batch of classification requests.
  std::vector<Value> batch;
  for (int i = 0; i < 8; ++i) {
    ValueDict args;
    args["size"] = Value(int64_t{24});
    args["seed"] = Value(int64_t{100 + i});
    args["model_seed"] = Value(int64_t{42});
    batch.push_back(Value(std::move(args)));
  }
  auto futures = service.submit_batch(classify_id, "hpc-endpoint", std::move(batch));

  std::printf("\nclassification results:\n");
  for (size_t i = 0; i < futures.size(); ++i) {
    const Value result = futures[i].result();
    std::printf("  image %zu -> class %lld (confidence %.2f)\n", i,
                static_cast<long long>(result.at("label").as_int()),
                result.at("confidence").as_real());
  }

  // The leaky function: every invocation is contained and killed; the
  // endpoint (and this process) survive.
  std::printf("\nleaky function under a 64 MB LFM limit:\n");
  ValueDict args;
  args["size"] = Value(int64_t{24});
  args["seed"] = Value(int64_t{1});
  args["model_seed"] = Value(int64_t{42});
  const auto outcome = service.submit(leaky_id, "hpc-endpoint", Value(std::move(args)));
  std::printf("  status=%s violated=%s peak_rss=%s\n",
              monitor::task_status_name(outcome.outcome().status),
              outcome.outcome().violated_resource.c_str(),
              lfm::format_bytes(outcome.outcome().usage.max_rss_bytes).c_str());

  std::printf("\nendpoint served %lld invocations and is still healthy\n",
              static_cast<long long>(service.endpoint("hpc-endpoint").invocations()));
  service.drain_all();
  return 0;
}
