// lfm_run: a command-line lightweight function monitor.
//
// Runs an arbitrary command under the LFM — measuring its whole process
// tree, enforcing limits, and printing a JSON resource report — the
// standalone-tool face of the library (compare Work Queue's
// resource_monitor).
//
// Usage:
//   lfm_run [options] -- command [args...]
//     --memory-mb N     kill past N MB of resident set
//     --wall-s S        kill past S seconds of wall time
//     --cores N         kill past N cores of observed parallelism
//     --poll-ms M       polling interval (default 20)
//     --timeline        include the per-poll usage timeline in the report
//
// Example:
//   ./build/examples/lfm_run --memory-mb 100 --wall-s 10 -- sh -c 'echo hi'
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "monitor/command.h"
#include "monitor/report.h"

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--memory-mb N] [--wall-s S] [--cores N] [--poll-ms M]"
               " [--timeline] -- command [args...]\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  lfm::monitor::CommandOptions options;
  options.monitor.poll_interval = 0.02;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    }
    const auto next_value = [&]() -> double {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--memory-mb") {
      options.monitor.limits.memory_bytes = static_cast<int64_t>(next_value() * 1e6);
    } else if (arg == "--wall-s") {
      options.monitor.limits.wall_time = next_value();
    } else if (arg == "--cores") {
      options.monitor.limits.cores = next_value();
    } else if (arg == "--poll-ms") {
      options.monitor.poll_interval = next_value() / 1e3;
    } else if (arg == "--timeline") {
      options.monitor.record_timeline = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (i >= argc) {
    usage(argv[0]);
    return 2;
  }

  std::vector<std::string> command;
  for (; i < argc; ++i) command.emplace_back(argv[i]);

  const auto outcome = lfm::monitor::run_command_monitored(command, options);

  // The command's own output already went to our stdout/stderr? No — it was
  // captured; echo it first, then the report on stderr-style separation.
  std::fwrite(outcome.result.output.data(), 1, outcome.result.output.size(), stdout);

  lfm::monitor::TaskOutcome report;
  report.status = outcome.status;
  report.error = outcome.error;
  report.violated_resource = outcome.violated_resource;
  report.usage = outcome.usage;
  report.timeline = outcome.timeline;
  std::fprintf(stderr, "%s\n", lfm::monitor::to_json(report).c_str());

  if (outcome.status == lfm::monitor::TaskStatus::kLimitExceeded) return 125;
  if (!outcome.ok()) return 124;
  return outcome.result.exit_code;
}
