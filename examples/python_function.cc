// Example: the complete LFM story for a real Python function.
//
// A user writes a Parsl-style module. This example then does everything the
// paper's system does, with real machinery at every step:
//
//   1. static analysis: scan the function's imports, check the Parsl
//      conventions and self-containment (§V.B)
//   2. dependency planning: pin versions, solve the minimal environment,
//      render requirements.txt (§V.B-C)
//   3. function shipping: extract exactly the function's source (§III.A)
//   4. execution: run the shipped source in the mini-Python interpreter
//      inside a forked, monitored LFM child; results return pickled (§VI.B)
//   5. containment: a leaky Python function is killed at its memory limit
//      without harming this process
//
// Build & run:  ./build/examples/python_function
#include <cstdio>

#include "flow/dfk.h"
#include "flow/plan.h"
#include "flow/pyapp.h"
#include "pkg/index.h"
#include "pysrc/unparse.h"
#include "util/units.h"

namespace {

using namespace lfm;
using serde::Value;
using serde::ValueList;

const char* kUserModule = R"(
"""A user's analysis module, written against Parsl."""
import parsl
from parsl import python_app
import math


@python_app
def summarize(samples, cutoff):
    import math
    kept = [s for s in samples if s >= cutoff]
    if not kept:
        return {'count': 0, 'mean': 0.0, 'rms': 0.0}
    mean = sum(kept) / len(kept)
    rms = math.sqrt(sum((s - mean) ** 2 for s in kept) / len(kept))
    return {'count': len(kept), 'mean': mean, 'rms': rms}


@python_app
def leaky(chunks):
    hoard = []
    i = 0
    while i < chunks:
        hoard.append('x' * 1000000)
        i = i + 1
    return len(hoard)
)";

}  // namespace

int main() {
  std::printf("== A Python function through the whole LFM pipeline ==\n");

  // 1-2. Analysis and planning.
  const pkg::PackageIndex& installed = pkg::standard_index();
  const auto plan = flow::plan_function_dependencies(kUserModule, "summarize", installed);
  std::printf("\n[analysis] imports:");
  for (const auto& name : plan.import_names) std::printf(" %s", name.c_str());
  std::printf(" (stdlib 'math' satisfied by the interpreter)\n");
  for (const auto& d : plan.diagnostics) {
    std::printf("[analysis] warn: %s\n", d.message.c_str());
  }
  const auto env = flow::build_environment("summarize", plan, installed);
  if (env.ok()) {
    std::printf("[planning] minimal environment: %zu packages, %s\n",
                env.value().package_count(),
                format_bytes(env.value().total_size()).c_str());
  }

  // 3. Ship exactly the function.
  const flow::App app = flow::python_app(kUserModule, "summarize");
  std::printf("\n[shipping] extracted source (%zu bytes):\n%s", app.python_source.size(),
              app.python_source.c_str());

  // 4. Execute under a real LFM.
  flow::LocalLfmExecutor executor(2);
  flow::DataFlowKernel dfk(executor);
  ValueList samples;
  for (int i = 0; i < 50; ++i) samples.push_back(Value(static_cast<double>(i % 17)));
  const flow::Future f =
      dfk.submit(app, {flow::Arg(Value(std::move(samples))), flow::Arg(Value(5.0))});
  const Value result = f.result();
  std::printf("\n[execute] summarize -> count=%lld mean=%.3f rms=%.3f\n",
              static_cast<long long>(result.at("count").as_int()),
              result.at("mean").as_real(), result.at("rms").as_real());

  // 5. Containment of a leaky function.
  flow::PythonAppOptions tight;
  tight.limits.memory_bytes = 64 * kMiB;
  tight.limits.wall_time = 60.0;
  const flow::Future doomed = dfk.submit(flow::python_app(kUserModule, "leaky", tight),
                                         {flow::Arg(Value(int64_t{100000}))});
  const auto& outcome = doomed.outcome();
  std::printf("\n[contain] leaky -> status=%s violated=%s peak=%s\n",
              monitor::task_status_name(outcome.status),
              outcome.violated_resource.c_str(),
              format_bytes(outcome.usage.max_rss_bytes).c_str());

  dfk.wait_all();
  executor.drain();
  std::printf("\nhost process unharmed; %zu monitored invocations recorded\n",
              executor.observations().size());
  return 0;
}
