// Quickstart: run a function inside a Lightweight Function Monitor.
//
// Demonstrates the core LFM loop from the paper: the function executes in a
// forked child, its result returns over a pipe, the parent polls /proc on an
// interval, and a memory limit kills a runaway invocation without touching
// the parent "interpreter".
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "monitor/lfm.h"
#include "serde/value.h"
#include "util/units.h"

using lfm::monitor::MonitorOptions;
using lfm::monitor::run_monitored;
using lfm::monitor::TaskOutcome;
using lfm::serde::Value;
using lfm::serde::ValueDict;

namespace {

// A well-behaved task: sums the squares below "n".
Value sum_squares(const Value& args) {
  const int64_t n = args.at("n").as_int();
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += i * i;
  ValueDict out;
  out["sum"] = Value(total);
  return Value(std::move(out));
}

// A runaway task: allocates memory without bound until the LFM kills it.
Value memory_hog(const Value&) {
  std::vector<std::string> hoard;
  while (true) {
    hoard.emplace_back(4 << 20, 'x');  // 4 MiB per iteration
  }
}

void report(const char* label, const TaskOutcome& outcome) {
  std::printf("%-12s status=%-14s usage: %s\n", label,
              lfm::monitor::task_status_name(outcome.status),
              outcome.usage.summary().c_str());
  if (outcome.ok()) {
    std::printf("%-12s result=%s\n", "", outcome.result.repr().c_str());
  } else {
    std::printf("%-12s error=%s\n", "", outcome.error.c_str());
  }
}

}  // namespace

int main() {
  std::printf("== LFM quickstart ==\n\n");

  // 1. Plain monitored execution: measure a healthy function.
  {
    ValueDict args;
    args["n"] = Value(int64_t{2'000'000});
    const TaskOutcome outcome = run_monitored(sum_squares, Value(std::move(args)));
    report("sum_squares", outcome);
  }

  // 2. Enforcement: a 64 MB memory limit kills the hog, parent survives.
  {
    MonitorOptions options;
    options.limits.memory_bytes = 64 * lfm::kMiB;
    options.poll_interval = 0.01;
    int polls = 0;
    options.on_poll = [&polls](const lfm::monitor::ResourceUsage&) { ++polls; };
    const TaskOutcome outcome = run_monitored(memory_hog, Value(), options);
    report("memory_hog", outcome);
    std::printf("%-12s polls=%d violated=%s\n\n", "", polls,
                outcome.violated_resource.c_str());
  }

  // 3. Decorator style: bind limits once, call like a function.
  {
    MonitorOptions options;
    options.limits.wall_time = 30.0;
    const lfm::monitor::Monitored monitored(sum_squares, options);
    ValueDict args;
    args["n"] = Value(int64_t{100});
    report("decorated", monitored(Value(std::move(args))));
  }

  std::printf("\nThe parent interpreter is still alive.\n");
  return 0;
}
