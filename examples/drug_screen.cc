// Example: the drug-screening pipeline with real kernels under LFMs.
//
// Generates a synthetic molecule corpus, then for each molecule runs the
// paper's stage chain — canonicalize -> featurize -> two docking-score
// models — as monitored function invocations through the DataFlowKernel,
// and reports the top candidates with the LFM usage per stage.
//
// Build & run:  ./build/examples/drug_screen
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/drugscreen.h"
#include "flow/dfk.h"

namespace {

using namespace lfm;
using serde::Value;
using serde::ValueDict;

struct Candidate {
  std::string smiles;
  double score_a = 0.0;
  double score_b = 0.0;
  double combined() const { return 0.5 * (score_a + score_b); }
};

}  // namespace

int main() {
  std::printf("== Drug screening pipeline (real kernels, LFM-monitored) ==\n");
  constexpr int kMolecules = 24;

  flow::LocalLfmExecutor executor(2);
  flow::DataFlowKernel dfk(executor);

  flow::App canonicalize =
      flow::App::make("canonicalize", apps::drugscreen::canonicalize_task);
  flow::App infer = flow::App::make("infer", apps::drugscreen::inference_task);
  infer.limits.memory_bytes = 256LL << 20;

  // Stage 1: canonicalize every molecule (futures fan out).
  std::vector<std::string> corpus;
  std::vector<flow::Future> canonical;
  for (int i = 0; i < kMolecules; ++i) {
    corpus.push_back(apps::drugscreen::random_smiles(7000 + i, 14));
    ValueDict args;
    args["smiles"] = Value(corpus.back());
    canonical.push_back(dfk.submit(canonicalize, {flow::Arg(Value(std::move(args)))}));
  }
  dfk.wait_all();

  // Stage 2: two independent docking models per molecule.
  std::vector<Candidate> candidates(kMolecules);
  std::vector<flow::Future> scores_a, scores_b;
  for (int i = 0; i < kMolecules; ++i) {
    candidates[static_cast<size_t>(i)].smiles = canonical[static_cast<size_t>(i)].result().as_str();
    for (const uint64_t model : {1ULL, 2ULL}) {
      ValueDict args;
      args["smiles"] = Value(candidates[static_cast<size_t>(i)].smiles);
      args["model_seed"] = Value(static_cast<int64_t>(model));
      auto& bucket = model == 1 ? scores_a : scores_b;
      bucket.push_back(dfk.submit(infer, {flow::Arg(Value(std::move(args)))}));
    }
  }
  dfk.wait_all();
  for (int i = 0; i < kMolecules; ++i) {
    candidates[static_cast<size_t>(i)].score_a =
        scores_a[static_cast<size_t>(i)].result().at("docking_score").as_real();
    candidates[static_cast<size_t>(i)].score_b =
        scores_b[static_cast<size_t>(i)].result().at("docking_score").as_real();
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.combined() > b.combined();
            });

  std::printf("\ntop candidates (of %d screened):\n", kMolecules);
  std::printf("%-40s %8s %8s %9s\n", "canonical SMILES", "model A", "model B", "combined");
  for (int i = 0; i < 5; ++i) {
    const auto& c = candidates[static_cast<size_t>(i)];
    std::printf("%-40.40s %8.3f %8.3f %9.3f\n", c.smiles.c_str(), c.score_a,
                c.score_b, c.combined());
  }

  executor.drain();
  std::printf("\nLFM usage by stage (%zu invocations):\n",
              executor.observations().size());
  double canon_wall = 0.0, infer_wall = 0.0;
  for (const auto& [name, usage] : executor.observations()) {
    (name == "canonicalize" ? canon_wall : infer_wall) += usage.wall_time;
  }
  std::printf("  canonicalize: %.2f s total wall\n", canon_wall);
  std::printf("  inference:    %.2f s total wall\n", infer_wall);
  return 0;
}
