// Example: the GDC genomic-analysis pipeline, three views.
//
//   1. Real kernels on synthetic data: generate a reference, sample reads
//      with planted SNPs, align, pile up, call variants, annotate — the
//      logical steps of the paper's DNA-Seq pipeline at toy scale.
//   2. The VEP problem: show how annotation memory scales with the variant
//      count, which is why even "perfect" static configuration misfires.
//   3. Elastic execution: run the simulated pipeline with ZERO initial
//      workers; the provisioner observes the queue and grows/shrinks the
//      pool through the (simulated) batch scheduler.
//
// Build & run:  ./build/examples/genomics_pipeline
#include <cstdio>

#include "apps/genomics.h"
#include "sim/provisioner.h"
#include "sim/site.h"
#include "util/units.h"
#include "wq/master.h"

namespace {

using namespace lfm;

void run_real_pipeline() {
  std::printf("== Part 1: real pipeline kernels ==\n");
  const std::string reference = apps::genomics::make_reference(20000, 42);
  const auto reads = apps::genomics::sample_reads(reference, 2000, 100,
                                                  /*error=*/0.005,
                                                  /*variant=*/0.003, 43);
  std::printf("reference %zu bp, %zu reads, %zu planted SNPs\n", reference.size(),
              reads.reads.size(), reads.variant_positions.size());

  const auto positions = apps::genomics::align_reads(reference, reads.reads);
  int mapped = 0;
  for (const int p : positions) {
    if (p >= 0) ++mapped;
  }
  std::printf("aligned: %d/%zu reads mapped\n", mapped, positions.size());

  const auto calls = apps::genomics::call_variants(reference, reads.reads, positions);
  std::printf("variant calling: %zu calls\n", calls.size());
  const auto annotations = apps::genomics::annotate_variants(calls);
  std::printf("annotation: %s\n", annotations.repr().c_str());
}

void show_vep_problem() {
  std::printf("\n== Part 2: VEP memory vs variant count (the Oracle's blind spot) ==\n");
  apps::genomics::Params params;
  params.genomes = 10;
  const auto tasks = apps::genomics::generate(params);
  std::printf("%-10s %14s %14s\n", "genome", "vep mem", "vep runtime");
  int genome = 0;
  for (const auto& t : tasks) {
    if (t.category != "vep-annotate") continue;
    std::printf("%-10d %14s %13.0fs\n", genome++,
                format_bytes(static_cast<int64_t>(t.true_peak.memory_bytes)).c_str(),
                t.exec_seconds);
  }
  std::printf("(a single per-category setting cannot fit all of these —\n"
              " the case where Auto beats Oracle in Fig 8)\n");
}

void run_elastic() {
  std::printf("\n== Part 3: elastic pool via the provisioner ==\n");
  sim::Simulation sim;
  sim::Network net(sim, sim::nscc().network);
  alloc::LabelerConfig cfg;
  const sim::Site site = sim::nscc();
  cfg.whole_node = alloc::Resources{static_cast<double>(site.node.cores),
                                    static_cast<double>(site.node.memory_bytes),
                                    static_cast<double>(site.node.disk_bytes)};
  cfg.guess = apps::genomics::guess_allocation();
  cfg.strategy = alloc::Strategy::kAuto;
  cfg.warmup_samples = 2;
  alloc::Labeler labeler(cfg);
  wq::Master master(sim, net, labeler);

  sim::ProvisionerPolicy policy;
  policy.max_workers = 14;
  policy.tasks_per_worker = 3.0;
  policy.poll_interval = 30.0;
  policy.idle_release_after = 300.0;
  sim::Provisioner provisioner(
      sim, policy, site.batch_submit_latency,
      [&] {
        return sim::LoadSnapshot{master.ready_count(), master.running_count(),
                                 master.live_worker_count()};
      },
      [&] { master.add_worker({cfg.whole_node, sim.now()}); },
      [&] { return master.release_idle_worker(); });

  apps::genomics::Params params;
  params.genomes = 12;
  for (auto& task : apps::genomics::generate(params)) master.submit(std::move(task));
  provisioner.start();
  const wq::MasterStats stats = master.run();

  std::printf("completed %lld tasks in %s\n",
              static_cast<long long>(stats.tasks_completed),
              format_seconds(stats.makespan).c_str());
  std::printf("pilots submitted: %d, workers started: %d, released: %d\n",
              provisioner.pilots_submitted(), provisioner.workers_started(),
              provisioner.workers_released());
  std::printf("exhaustion retries: %lld (Auto learning the stage labels)\n",
              static_cast<long long>(stats.exhaustion_retries));
}

}  // namespace

int main() {
  run_real_pipeline();
  show_vep_problem();
  run_elastic();
  return 0;
}
